//! Anonymous randomized maximal independent set.
//!
//! Section 4 of the paper assumes "no two neighbors have the same ID". The
//! classical way to drop that assumption (the paper cites Shukla,
//! Rosenkrantz & Ravi's "systematic randomization" as ref. 12) is to break
//! symmetry with private coins instead of identifiers. This module
//! implements a synchronous randomized MIS in that spirit:
//!
//! Each node's state is `(x, seed)` where `x` is set-membership and `seed`
//! is the node's private coin stream, advanced deterministically with
//! SplitMix64 *only when the node acts* (so fixpoints stay silent). The
//! current priority of a member is `hash(seed)`. Rules:
//!
//! * **R1 (enter):** `x = 0` and no neighbor has `x = 1` — enter and draw a
//!   fresh seed.
//! * **R2 (resolve):** `x = 1` and some neighbor has `x = 1` with a
//!   **higher (or tying) priority** — leave and draw a fresh seed.
//!
//! Adjacent members fight with priorities: the strict maximum survives, all
//! others leave. Because coins are fresh each fight, two neighbors tie with
//! probability `2⁻⁶⁴`, and any conflict cluster loses all-but-one member
//! per round with high probability; vacated neighborhoods are re-entered by
//! R1. Expected stabilization is `O(log n)` rounds on bounded-degree
//! graphs — and, importantly, **without IDs**.
//!
//! **The impossibility flip side** (tested): if all seeds start equal — the
//! fully symmetric configuration an adversary can always set up — the
//! system is deterministic and symmetric, and on a vertex-transitive graph
//! like `C₄` it livelocks forever. This is exactly why the paper's
//! deterministic algorithms need unique IDs, and why the randomized variant
//! needs genuinely random initial coins.

use rand::rngs::StdRng;
use rand::RngExt;
use selfstab_engine::protocol::{Move, Protocol, View};
use selfstab_graph::predicates::is_maximal_independent_set;
use selfstab_graph::{Graph, Node};
use selfstab_json::{FromJson, Json, JsonError, ToJson};

/// Per-node state of the anonymous protocol.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct AnonState {
    /// Set membership.
    pub x: bool,
    /// Private coin stream (advanced on every move).
    pub seed: u64,
}

impl ToJson for AnonState {
    fn to_json(&self) -> Json {
        Json::obj([("x", self.x.to_json()), ("seed", self.seed.to_json())])
    }
}

impl FromJson for AnonState {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(AnonState {
            x: bool::from_json(value.field("x")?)?,
            seed: u64::from_json(value.field("seed")?)?,
        })
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The current fight priority of a state.
fn priority(s: &AnonState) -> u64 {
    splitmix64(s.seed)
}

/// Anonymous randomized MIS. See the [module docs](self).
#[derive(Clone, Debug, Default)]
pub struct AnonMis;

/// Rule indices into [`AnonMis::rule_names`].
pub mod rule {
    /// R1: enter the set.
    pub const ENTER: usize = 0;
    /// R2: lose a priority fight and leave.
    pub const RESOLVE: usize = 1;
}

impl AnonMis {
    /// Construct the protocol (stateless — all state is per node).
    pub fn new() -> Self {
        AnonMis
    }

    /// Membership vector of a global state.
    pub fn members(states: &[AnonState]) -> Vec<bool> {
        states.iter().map(|s| s.x).collect()
    }
}

impl Protocol for AnonMis {
    type State = AnonState;

    fn rule_names(&self) -> &'static [&'static str] {
        &["R1:enter", "R2:resolve"]
    }

    /// NOTE: the all-equal-seed default is the *symmetric* start used by
    /// the impossibility test; real deployments must seed with randomness
    /// (use [`selfstab_engine::protocol::InitialState::Random`]).
    fn default_state(&self) -> AnonState {
        AnonState { x: false, seed: 0 }
    }

    fn arbitrary_state(&self, _: Node, _: &[Node], rng: &mut StdRng) -> AnonState {
        AnonState {
            x: rng.random_bool(0.5),
            seed: rng.random(),
        }
    }

    /// The seed component makes the true local state space unbounded; for
    /// exhaustive checking we quotient to four representatives (in/out ×
    /// two distinct seeds), which is exactly the information the guards
    /// read. Exhaustive runs over this quotient are indicative, not a
    /// proof — the randomized protocol's guarantee is probabilistic anyway.
    fn enumerate_states(&self, node: Node, _: &[Node]) -> Vec<AnonState> {
        vec![
            AnonState {
                x: false,
                seed: node.index() as u64,
            },
            AnonState {
                x: false,
                seed: node.index() as u64 + 1000,
            },
            AnonState {
                x: true,
                seed: node.index() as u64,
            },
            AnonState {
                x: true,
                seed: node.index() as u64 + 1000,
            },
        ]
    }

    fn step(&self, view: View<'_, AnonState>) -> Option<Move<AnonState>> {
        let me = view.own();
        if me.x {
            let my_priority = priority(me);
            let beaten = view
                .neighbor_states()
                .any(|(_, s)| s.x && priority(s) >= my_priority);
            beaten.then(|| Move {
                rule: rule::RESOLVE,
                next: AnonState {
                    x: false,
                    seed: splitmix64(me.seed ^ 0x5e1f),
                },
            })
        } else {
            let dominated = view.neighbor_states().any(|(_, s)| s.x);
            (!dominated).then(|| Move {
                rule: rule::ENTER,
                next: AnonState {
                    x: true,
                    seed: splitmix64(me.seed ^ 0xa11),
                },
            })
        }
    }

    fn is_legitimate(&self, graph: &Graph, states: &[AnonState]) -> bool {
        is_maximal_independent_set(graph, &Self::members(states))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_engine::protocol::InitialState;
    use selfstab_engine::sync::{Outcome, SyncExecutor};
    use selfstab_graph::generators;

    #[test]
    fn stabilizes_without_ids_on_suite() {
        for fam in generators::Family::ALL {
            let g = fam.build(24);
            let n = g.n();
            let proto = AnonMis::new();
            let exec = SyncExecutor::new(&g, &proto);
            for seed in 0..20 {
                // Generous O(n) budget; expected stabilization is much faster.
                let run = exec.run(InitialState::Random { seed }, 4 * n);
                assert!(run.stabilized(), "{} seed {seed}", fam.name());
                assert!(
                    proto.is_legitimate(&g, &run.final_states),
                    "{} seed {seed}",
                    fam.name()
                );
            }
        }
    }

    #[test]
    fn randomized_is_fast_in_practice() {
        // On a 256-cycle, expected O(log n)-ish rounds; assert well below
        // the deterministic worst case.
        let g = generators::cycle(256);
        let proto = AnonMis::new();
        let exec = SyncExecutor::new(&g, &proto);
        let mut worst = 0;
        for seed in 0..20 {
            let run = exec.run(InitialState::Random { seed }, 1024);
            assert!(run.stabilized());
            worst = worst.max(run.rounds());
        }
        assert!(worst < 64, "randomized MIS took {worst} rounds on C256");
    }

    #[test]
    fn symmetric_seeds_livelock_on_c4() {
        // The impossibility argument: identical coins on a vertex-transitive
        // graph can never break symmetry.
        let g = generators::cycle(4);
        let proto = AnonMis::new();
        // The seed chains advance deterministically, so the *global state*
        // never literally repeats (the memberships do, the coins don't) —
        // the signature of the livelock is running out of rounds with the
        // membership still flapping in lockstep.
        let exec = SyncExecutor::new(&g, &proto).with_trace();
        let run = exec.run(InitialState::Default, 2_000);
        assert!(
            matches!(run.outcome, Outcome::RoundLimit | Outcome::Cycle { .. }),
            "symmetric start must livelock, got {:?}",
            run.outcome
        );
        // Memberships alternate all-out / all-in, perfectly symmetric.
        let trace = run.trace.as_ref().expect("traced");
        for states in trace.iter().take(50) {
            let members = AnonMis::members(states);
            assert!(
                members.iter().all(|&m| m) || members.iter().all(|&m| !m),
                "symmetry can never break: {members:?}"
            );
        }
    }

    #[test]
    fn distinct_seeds_rescue_the_symmetric_membership() {
        // Same all-out membership, but distinct coins: stabilizes.
        let g = generators::cycle(4);
        let proto = AnonMis::new();
        let init: Vec<AnonState> = (0..4)
            .map(|i| AnonState {
                x: false,
                seed: 0xdead_beef + i as u64,
            })
            .collect();
        let run = SyncExecutor::new(&g, &proto).run(InitialState::Explicit(init), 100);
        assert!(run.stabilized());
        assert!(proto.is_legitimate(&g, &run.final_states));
    }

    #[test]
    fn priorities_only_matter_between_members() {
        let g = generators::path(2);
        let proto = AnonMis::new();
        // Lone member with an out neighbor: silent member, dominated
        // neighbor silent too.
        let states = vec![
            AnonState { x: true, seed: 1 },
            AnonState { x: false, seed: 2 },
        ];
        assert!(proto
            .step(View::new(Node(0), g.neighbors(Node(0)), &states))
            .is_none());
        assert!(proto
            .step(View::new(Node(1), g.neighbors(Node(1)), &states))
            .is_none());
        // Two adjacent members: exactly the lower-priority one leaves.
        let states = vec![
            AnonState { x: true, seed: 7 },
            AnonState { x: true, seed: 8 },
        ];
        let m0 = proto.step(View::new(Node(0), g.neighbors(Node(0)), &states));
        let m1 = proto.step(View::new(Node(1), g.neighbors(Node(1)), &states));
        assert_ne!(m0.is_some(), m1.is_some(), "exactly one loser");
        let loser = m0.or(m1).expect("one move");
        assert_eq!(loser.rule, rule::RESOLVE);
        assert!(!loser.next.x);
    }
}
