//! Daemon refinement: running central-daemon protocols in the synchronous
//! model.
//!
//! Section 3 of the paper: *"the central daemon algorithm of [Hsu–Huang]
//! may be converted into a synchronous model protocol using the techniques
//! of \[Dolev–Pradhan–Welch, Beauquier et al.\], \[but\] the resulting protocol
//! is not as fast"* — and Section 5 generalizes: problems solvable under the
//! centralized model are generally solvable under the synchronous model with
//! no speed guarantee. This module implements the conversion so experiment
//! E6 can quantify "not as fast".
//!
//! The refinement enforces **local mutual exclusion**: per synchronous
//! round, only a set of privileged nodes that is *independent in the graph*
//! may fire. Simultaneous moves at pairwise non-adjacent nodes commute
//! (each guard reads only the closed neighborhood, which is disjoint from
//! the other movers), so every refined synchronous execution is equivalent
//! to *some* central-daemon execution — and a protocol proved stabilizing
//! under **any** central daemon stays stabilizing. Two refinements:
//!
//! * [`Refinement::DeterministicLocalMutex`] — a privileged node fires iff
//!   no privileged neighbor precedes it in a fixed order (greedy maximal
//!   independent subset). Needs 2-hop privilege information, which in a
//!   beacon network costs one extra piggybacked bit ("I am privileged") and
//!   doubles the round length.
//! * [`Refinement::RandomizedPriority`] — each round privileged nodes draw
//!   fresh random priorities and local maxima fire (Beauquier–Datta–
//!   Gradinariu–Magniette, DISC 2000). Same beacon cost, no IDs needed.
//!
//! Either way at most a constant *fraction* of conflicts resolve per round,
//! which is exactly why the converted Hsu–Huang needs more rounds than the
//! natively synchronous SMM.

use selfstab_engine::distributed::{DistributedExecutor, SubsetPolicy};
use selfstab_engine::protocol::{InitialState, Protocol};
use selfstab_engine::sync::Run;
use selfstab_graph::Graph;

/// Which local-mutual-exclusion refinement to apply.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Refinement {
    /// Greedy maximal independent subset of privileged nodes, by index.
    DeterministicLocalMutex,
    /// Fresh random priorities each round; strict local maxima fire.
    RandomizedPriority {
        /// RNG seed for the per-round priorities.
        seed: u64,
    },
}

impl Refinement {
    fn policy(self) -> SubsetPolicy {
        match self {
            Refinement::DeterministicLocalMutex => SubsetPolicy::IndependentGreedy,
            Refinement::RandomizedPriority { seed } => SubsetPolicy::random_priority(seed),
        }
    }
}

/// Run a central-daemon protocol in the synchronous model under the given
/// refinement. Rounds in the returned [`Run`] are synchronous rounds of the
/// refined protocol (each costing a constant number of beacon periods).
pub fn run_synchronized<P: Protocol>(
    graph: &Graph,
    proto: &P,
    init: InitialState<P::State>,
    refinement: Refinement,
    max_rounds: usize,
) -> Run<P::State> {
    let mut policy = refinement.policy();
    DistributedExecutor::new(graph, proto).run(init, &mut policy, max_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hsu_huang::HsuHuang;
    use crate::smm::{SelectPolicy, Smm};
    use selfstab_engine::sync::SyncExecutor;
    use selfstab_graph::{generators, Ids};

    #[test]
    fn synchronized_hsu_huang_stabilizes_where_raw_sync_oscillates() {
        // Raw synchronous clockwise Hsu–Huang oscillates on C4 (see
        // hsu_huang tests); the refined version must stabilize.
        let g = generators::cycle(4);
        let hh = HsuHuang::with_policy(4, SelectPolicy::Clockwise);
        for refinement in [
            Refinement::DeterministicLocalMutex,
            Refinement::RandomizedPriority { seed: 5 },
        ] {
            let run = run_synchronized(&g, &hh, InitialState::Default, refinement, 10_000);
            assert!(run.stabilized(), "{refinement:?}");
            assert!(hh.is_legitimate(&g, &run.final_states));
        }
    }

    #[test]
    fn synchronized_hsu_huang_stabilizes_on_suite() {
        for fam in generators::Family::ALL {
            let g = fam.build(16);
            let hh = HsuHuang::classic(g.n());
            for seed in 0..5 {
                let run = run_synchronized(
                    &g,
                    &hh,
                    InitialState::Random { seed },
                    Refinement::RandomizedPriority { seed: seed ^ 0xabc },
                    100_000,
                );
                assert!(run.stabilized(), "{}", fam.name());
                assert!(hh.is_legitimate(&g, &run.final_states));
            }
        }
    }

    #[test]
    fn native_smm_is_faster_than_converted_baseline() {
        // The paper's Section 3 claim, in miniature: average rounds of SMM
        // vs synchronized Hsu–Huang over random starts on a random graph.
        use rand::SeedableRng;
        let g =
            generators::erdos_renyi_connected(60, 0.1, &mut rand::rngs::StdRng::seed_from_u64(2));
        let n = g.n();
        let smm = Smm::paper(Ids::identity(n));
        let hh = HsuHuang::classic(n);
        let mut smm_total = 0usize;
        let mut hh_total = 0usize;
        for seed in 0..20 {
            let a = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed }, n + 1);
            assert!(a.stabilized());
            smm_total += a.rounds();
            let b = run_synchronized(
                &g,
                &hh,
                InitialState::Random { seed },
                Refinement::RandomizedPriority { seed },
                100_000,
            );
            assert!(b.stabilized());
            hh_total += b.rounds();
        }
        assert!(
            hh_total > smm_total,
            "converted baseline should be slower: SMM {smm_total} vs HH {hh_total} rounds"
        );
    }
}
