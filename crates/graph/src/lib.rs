//! Graph substrate for the `selfstab` workspace.
//!
//! The protocols of Goddard–Hedetniemi–Jacobs–Srimani (IPDPS 2003) run on an
//! undirected system graph `G = (V, E)` whose node set is fixed and whose
//! edge set changes with host mobility (Section 2 of the paper). This crate
//! provides:
//!
//! * a compact undirected [`Graph`] with sorted adjacency lists,
//! * unique comparable node identifiers ([`Ids`]) decoupled from positional
//!   indices, so adversarial ID orders can be tested,
//! * the topology [`generators`] used by the experiment suite,
//! * the global [`predicates`] the protocols must establish (matching,
//!   maximal matching, independence, maximal independent set, domination),
//! * connectivity-aware [`mutate`] operations modelling link churn, and
//! * [`traversal`] utilities (BFS, components, diameter) plus
//!   [`dot`] export for debugging.
//!
//! Everything is deterministic given a seeded RNG; no global state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dimacs;
pub mod dot;
pub mod generators;
pub mod graph;
pub mod graph6;
pub mod ids;
pub mod mutate;
pub mod predicates;
pub mod traversal;

pub use graph::{Edge, Graph, Node};
pub use ids::Ids;
