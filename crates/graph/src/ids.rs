//! Unique comparable node identifiers.
//!
//! The paper assumes "each node is assigned a unique ID" (Section 2) and both
//! algorithms compare IDs: SMM rule R2 proposes to the *minimum-ID* null
//! neighbor and SMI breaks symmetry in favour of *bigger-ID* neighbors.
//! Decoupling IDs from positional indices lets the experiment harness test
//! adversarial ID orders (e.g. IDs increasing along a path, the worst case
//! for SMI) on the same topology.

use crate::graph::Node;
use rand::seq::SliceRandom;
use rand::Rng;
use selfstab_json::{FromJson, Json, JsonError, ToJson};

/// An assignment of distinct `u64` identifiers to the nodes `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ids {
    ids: Vec<u64>,
}

impl ToJson for Ids {
    fn to_json(&self) -> Json {
        self.ids.to_json()
    }
}

impl FromJson for Ids {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Ids {
            ids: Vec::<u64>::from_json(value)?,
        })
    }
}

impl Ids {
    /// Identity assignment: node `i` gets ID `i`.
    pub fn identity(n: usize) -> Self {
        Ids {
            ids: (0..n as u64).collect(),
        }
    }

    /// Reversed assignment: node `i` gets ID `n - 1 - i`.
    pub fn reversed(n: usize) -> Self {
        Ids {
            ids: (0..n as u64).rev().collect(),
        }
    }

    /// A uniformly random permutation of `0..n` as IDs.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut ids: Vec<u64> = (0..n as u64).collect();
        ids.shuffle(rng);
        Ids { ids }
    }

    /// Explicit assignment. Panics if the IDs are not pairwise distinct.
    pub fn from_vec(ids: Vec<u64>) -> Self {
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "node IDs must be pairwise distinct"
        );
        Ids { ids }
    }

    /// Number of nodes covered by this assignment.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the assignment is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The ID of node `v`.
    #[inline]
    pub fn id(&self, v: Node) -> u64 {
        self.ids[v.index()]
    }

    /// `true` iff `a`'s ID is smaller than `b`'s.
    #[inline]
    pub fn lt(&self, a: Node, b: Node) -> bool {
        self.id(a) < self.id(b)
    }

    /// The node with minimum ID among `candidates`, or `None` if empty.
    pub fn min_by_id(&self, candidates: impl IntoIterator<Item = Node>) -> Option<Node> {
        candidates.into_iter().min_by_key(|&v| self.id(v))
    }

    /// The node with maximum ID among `candidates`, or `None` if empty.
    pub fn max_by_id(&self, candidates: impl IntoIterator<Item = Node>) -> Option<Node> {
        candidates.into_iter().max_by_key(|&v| self.id(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_and_reversed() {
        let ids = Ids::identity(4);
        assert_eq!(ids.id(Node(2)), 2);
        let rev = Ids::reversed(4);
        assert_eq!(rev.id(Node(0)), 3);
        assert_eq!(rev.id(Node(3)), 0);
        assert!(rev.lt(Node(3), Node(0)));
    }

    #[test]
    fn random_is_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let ids = Ids::random(100, &mut rng);
        let mut seen: Vec<u64> = (0..100).map(|i| ids.id(Node(i))).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn min_max_by_id() {
        let ids = Ids::from_vec(vec![10, 5, 99, 7]);
        let all = [Node(0), Node(1), Node(2), Node(3)];
        assert_eq!(ids.min_by_id(all), Some(Node(1)));
        assert_eq!(ids.max_by_id(all), Some(Node(2)));
        assert_eq!(ids.min_by_id([]), None);
    }

    #[test]
    #[should_panic(expected = "pairwise distinct")]
    fn duplicate_ids_panic() {
        Ids::from_vec(vec![1, 2, 1]);
    }
}
