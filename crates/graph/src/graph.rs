//! The undirected system graph.
//!
//! Nodes are dense indices `0..n` wrapped in [`Node`]; adjacency lists are
//! kept sorted so membership tests are `O(log deg)` and iteration order is
//! deterministic, which the synchronous engine relies on for reproducible
//! executions.

use selfstab_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// A node handle: a dense index into the graph's vertex set.
///
/// `Node` is *positional*; the comparable protocol identifier of a node is
/// assigned separately via [`crate::ids::Ids`] so that experiments can permute
/// IDs adversarially without rebuilding the topology.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node(pub u32);

impl ToJson for Node {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for Node {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        u32::from_json(value).map(Node)
    }
}

impl Node {
    /// The position of this node as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for Node {
    fn from(i: usize) -> Self {
        Node(u32::try_from(i).expect("node index exceeds u32::MAX"))
    }
}

/// An undirected edge, stored with `a <= b` (by index).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Edge {
    /// Smaller endpoint (by index).
    pub a: Node,
    /// Larger endpoint (by index).
    pub b: Node,
}

impl Edge {
    /// Create a normalized edge; panics on self-loops.
    pub fn new(u: Node, v: Node) -> Self {
        assert_ne!(u, v, "self-loops are not allowed");
        if u <= v {
            Edge { a: u, b: v }
        } else {
            Edge { a: v, b: u }
        }
    }

    /// The endpoint different from `x`; panics if `x` is not an endpoint.
    pub fn other(&self, x: Node) -> Node {
        if x == self.a {
            self.b
        } else if x == self.b {
            self.a
        } else {
            panic!("{x:?} is not an endpoint of {self:?}")
        }
    }
}

/// An undirected simple graph with a fixed vertex set `0..n`.
///
/// The edge set can be mutated (see [`crate::mutate`]) to model link
/// creation/failure caused by host mobility; the node set never changes,
/// matching the system model of the paper ("no node leaves the system and no
/// new node joins").
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<Node>>,
    m: usize,
}

impl Graph {
    /// An edgeless graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        assert!(u32::try_from(n).is_ok(), "too many nodes");
        Graph {
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Build a graph on `n` nodes from an edge list. Duplicate edges are
    /// ignored; self-loops panic.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Graph::empty(n);
        for (u, v) in edges {
            g.add_edge(Node::from(u), Node::from(v));
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Iterator over all nodes.
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = Node> + Clone + use<> {
        (0..self.adj.len() as u32).map(Node)
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: Node) -> &[Node] {
        &self.adj[v.index()]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: Node) -> usize {
        self.adj[v.index()].len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        u != v && self.adj[u.index()].binary_search(&v).is_ok()
    }

    /// Add edge `{u, v}`. Returns `true` if the edge was new.
    pub fn add_edge(&mut self, u: Node, v: Node) -> bool {
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(
            u.index() < self.n() && v.index() < self.n(),
            "node out of range"
        );
        match self.adj[u.index()].binary_search(&v) {
            Ok(_) => false,
            Err(pos_u) => {
                self.adj[u.index()].insert(pos_u, v);
                let pos_v = self.adj[v.index()]
                    .binary_search(&u)
                    .expect_err("adjacency lists out of sync");
                self.adj[v.index()].insert(pos_v, u);
                self.m += 1;
                true
            }
        }
    }

    /// Remove edge `{u, v}`. Returns `true` if the edge existed.
    pub fn remove_edge(&mut self, u: Node, v: Node) -> bool {
        if u == v {
            return false;
        }
        match self.adj[u.index()].binary_search(&v) {
            Err(_) => false,
            Ok(pos_u) => {
                self.adj[u.index()].remove(pos_u);
                let pos_v = self.adj[v.index()]
                    .binary_search(&u)
                    .expect("adjacency lists out of sync");
                self.adj[v.index()].remove(pos_v);
                self.m -= 1;
                true
            }
        }
    }

    /// Remove every edge incident to `v` in one pass; returns the former
    /// neighbors (sorted). Observably equivalent to `remove_edge(v, w)` per
    /// neighbor, but linear in the degrees touched instead of quadratic in
    /// `deg(v)` — the difference between O(n) and O(n²) when a hub leaves.
    pub fn isolate(&mut self, v: Node) -> Vec<Node> {
        assert!(v.index() < self.n(), "node out of range");
        let dropped = std::mem::take(&mut self.adj[v.index()]);
        for &w in &dropped {
            let pos = self.adj[w.index()]
                .binary_search(&v)
                .expect("adjacency lists out of sync");
            self.adj[w.index()].remove(pos);
        }
        self.m -= dropped.len();
        dropped
    }

    /// Add edges `{v, w}` for every `w` in `ws`, skipping pairs already
    /// linked; returns the endpoints actually attached (sorted, deduplicated).
    /// Observably equivalent to `add_edge(v, w)` per entry, but merges `v`'s
    /// adjacency list once instead of re-inserting into it per edge.
    pub fn attach(&mut self, v: Node, ws: &[Node]) -> Vec<Node> {
        assert!(v.index() < self.n(), "node out of range");
        let mut added: Vec<Node> = Vec::with_capacity(ws.len());
        for &w in ws {
            assert_ne!(w, v, "self-loops are not allowed");
            assert!(w.index() < self.n(), "node out of range");
            if !self.has_edge(v, w) {
                added.push(w);
            }
        }
        added.sort_unstable();
        added.dedup();
        for &w in &added {
            let pos = self.adj[w.index()]
                .binary_search(&v)
                .expect_err("adjacency lists out of sync");
            self.adj[w.index()].insert(pos, v);
        }
        let old = std::mem::take(&mut self.adj[v.index()]);
        let mut merged = Vec::with_capacity(old.len() + added.len());
        let (mut i, mut j) = (0, 0);
        while i < old.len() && j < added.len() {
            if old[i] < added[j] {
                merged.push(old[i]);
                i += 1;
            } else {
                merged.push(added[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&old[i..]);
        merged.extend_from_slice(&added[j..]);
        self.adj[v.index()] = merged;
        self.m += added.len();
        added
    }

    /// All edges, each reported once with `a < b`, in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = Node(u as u32);
            nbrs.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| Edge { a: u, b: v })
        })
    }

    /// Sum of degrees (= 2m); used in sanity checks.
    pub fn degree_sum(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

impl ToJson for Graph {
    /// `{"n": …, "edges": [[a, b], …]}` — the edge list is the canonical
    /// exchange format (adjacency is a derived index).
    fn to_json(&self) -> Json {
        let edges: Vec<(Node, Node)> = self.edges().map(|e| (e.a, e.b)).collect();
        Json::obj([("n", self.n().to_json()), ("edges", edges.to_json())])
    }
}

impl FromJson for Graph {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let n = usize::from_json(value.field("n")?)?;
        let edges = Vec::<(Node, Node)>::from_json(value.field("edges")?)?;
        let mut g = Graph::empty(n);
        for (a, b) in edges {
            if a.index() >= n || b.index() >= n {
                return Err(JsonError::new(format!(
                    "edge ({a:?}, {b:?}) out of range for n={n}"
                )));
            }
            g.add_edge(a, b);
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = Graph::empty(4);
        assert!(g.add_edge(Node(0), Node(1)));
        assert!(
            !g.add_edge(Node(1), Node(0)),
            "duplicate edge must be ignored"
        );
        assert!(g.add_edge(Node(1), Node(2)));
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(Node(0), Node(1)));
        assert!(g.has_edge(Node(1), Node(0)));
        assert!(!g.has_edge(Node(0), Node(2)));
        assert!(g.remove_edge(Node(0), Node(1)));
        assert!(!g.remove_edge(Node(0), Node(1)));
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(Node(1)), 1);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, [(3, 1), (3, 4), (3, 0), (3, 2)]);
        assert_eq!(g.neighbors(Node(3)), &[Node(0), Node(1), Node(2), Node(4)]);
        assert_eq!(g.degree(Node(3)), 4);
        assert_eq!(g.degree_sum(), 2 * g.m());
    }

    #[test]
    fn edges_iterator_normalized() {
        let g = Graph::from_edges(4, [(2, 0), (1, 3), (0, 1)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                Edge::new(Node(0), Node(1)),
                Edge::new(Node(0), Node(2)),
                Edge::new(Node(1), Node(3)),
            ]
        );
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(Node(7), Node(3));
        assert_eq!(e.a, Node(3));
        assert_eq!(e.other(Node(3)), Node(7));
        assert_eq!(e.other(Node(7)), Node(3));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Graph::empty(2);
        g.add_edge(Node(1), Node(1));
    }

    #[test]
    fn isolate_matches_per_edge_removal() {
        let mut batch = Graph::from_edges(6, [(0, 1), (0, 2), (0, 4), (2, 3), (4, 5)]);
        let mut serial = batch.clone();
        let dropped = batch.isolate(Node(0));
        assert_eq!(dropped, vec![Node(1), Node(2), Node(4)]);
        for &w in &dropped {
            assert!(serial.remove_edge(Node(0), w));
        }
        assert_eq!(batch, serial);
        assert_eq!(batch.degree(Node(0)), 0);
        assert_eq!(batch.m(), 2);
        assert!(batch.isolate(Node(0)).is_empty(), "already isolated");
    }

    #[test]
    fn attach_matches_per_edge_addition() {
        let mut batch = Graph::from_edges(6, [(2, 3), (4, 5)]);
        let mut serial = batch.clone();
        // Duplicates and already-present edges are skipped, not errors.
        let ws = [Node(4), Node(1), Node(2), Node(1)];
        let added = batch.attach(Node(3), &ws);
        assert_eq!(added, vec![Node(1), Node(4)]);
        for &w in &ws {
            serial.add_edge(Node(3), w);
        }
        assert_eq!(batch, serial);
        assert_eq!(batch.neighbors(Node(3)), &[Node(1), Node(2), Node(4)]);
        assert_eq!(batch.m(), 4);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn attach_self_loop_panics() {
        let mut g = Graph::empty(3);
        g.attach(Node(1), &[Node(0), Node(1)]);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        Edge::new(Node(0), Node(1)).other(Node(2));
    }
}
