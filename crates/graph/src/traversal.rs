//! Breadth-first traversal, connectivity, and distance utilities.
//!
//! The paper's system model assumes the (mobile) network graph stays
//! connected; [`is_connected`] is the guard used by the mutation layer, and
//! [`diameter`] feeds the experiment reports (stabilization time is often
//! compared against diameter-scale quantities).

use crate::graph::{Graph, Node};
use std::collections::VecDeque;

/// BFS distances from `src`; unreachable nodes get `usize::MAX`.
pub fn bfs_distances(g: &Graph, src: Node) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Whether the graph is connected (the empty graph and `n = 1` count as
/// connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() <= 1 {
        return true;
    }
    bfs_distances(g, Node(0)).iter().all(|&d| d != usize::MAX)
}

/// Whether the graph would stay connected after removing edge `{u, v}`.
///
/// Used by the churn model: the paper assumes node movement is coordinated so
/// the topology never disconnects.
pub fn connected_without_edge(g: &Graph, u: Node, v: Node) -> bool {
    // BFS from u avoiding the direct edge u-v; connected iff v still reached
    // and, because the graph was connected before, everything else stays
    // reachable through u's component.
    debug_assert!(g.has_edge(u, v));
    let mut seen = vec![false; g.n()];
    let mut queue = VecDeque::new();
    seen[u.index()] = true;
    queue.push_back(u);
    while let Some(x) = queue.pop_front() {
        for &y in g.neighbors(x) {
            if (x == u && y == v) || (x == v && y == u) {
                continue;
            }
            if !seen[y.index()] {
                seen[y.index()] = true;
                queue.push_back(y);
            }
        }
    }
    seen[v.index()]
}

/// Connected components as a label vector (labels are `0..k` in discovery
/// order) together with the number of components.
pub fn components(g: &Graph) -> (Vec<usize>, usize) {
    let mut label = vec![usize::MAX; g.n()];
    let mut next = 0;
    for s in g.nodes() {
        if label[s.index()] != usize::MAX {
            continue;
        }
        label[s.index()] = next;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v.index()] == usize::MAX {
                    label[v.index()] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// Exact diameter via BFS from every node. `None` if the graph is
/// disconnected or has no nodes.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.n() == 0 {
        return None;
    }
    let mut best = 0;
    for s in g.nodes() {
        let d = bfs_distances(g, s);
        let ecc = *d.iter().max().expect("non-empty");
        if ecc == usize::MAX {
            return None;
        }
        best = best.max(ecc);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_path() {
        let g = generators::path(5);
        let d = bfs_distances(&g, Node(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn connectivity() {
        let mut g = generators::path(4);
        assert!(is_connected(&g));
        g.remove_edge(Node(1), Node(2));
        assert!(!is_connected(&g));
        let (_, k) = components(&g);
        assert_eq!(k, 2);
    }

    #[test]
    fn bridge_detection() {
        let mut g = generators::cycle(4);
        // Every cycle edge is removable without disconnecting.
        assert!(connected_without_edge(&g, Node(0), Node(1)));
        g.remove_edge(Node(2), Node(3));
        // Now 0-1 is on the only remaining path; removing it disconnects.
        assert!(!connected_without_edge(&g, Node(0), Node(1)));
    }

    #[test]
    fn diameters() {
        assert_eq!(diameter(&generators::path(6)), Some(5));
        assert_eq!(diameter(&generators::cycle(6)), Some(3));
        assert_eq!(diameter(&generators::complete(6)), Some(1));
        assert_eq!(diameter(&Graph::empty(3)), None);
        assert_eq!(diameter(&Graph::empty(0)), None);
        assert_eq!(diameter(&Graph::empty(1)), Some(0));
    }
}
