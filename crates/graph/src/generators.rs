//! Topology generators for the experiment suite.
//!
//! Structured families cover the worst cases the paper's proofs point at
//! (paths and cycles with adversarial ID orders, stars, cliques), while the
//! random families ([`unit_disk`], [`erdos_renyi_connected`],
//! [`random_geometric_connected`]) model ad hoc deployments.

use crate::graph::{Graph, Node};
use crate::traversal::is_connected;
use rand::{Rng, RngExt};

/// Path `P_n`: `0 - 1 - … - n-1`.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| (i - 1, i)))
}

/// Cycle `C_n` (requires `n >= 3`).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    Graph::from_edges(n, (0..n).flat_map(|i| (i + 1..n).map(move |j| (i, j))))
}

/// Star `K_{1,n-1}` with node 0 at the center.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    Graph::from_edges(n, (1..n).map(|i| (0, i)))
}

/// Wheel: a cycle on nodes `1..n` plus a hub `0` adjacent to all of them
/// (requires `n >= 4`).
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "a wheel needs at least 4 nodes");
    let rim = n - 1;
    let mut g = star(n);
    for i in 0..rim {
        g.add_edge(Node::from(1 + i), Node::from(1 + (i + 1) % rim));
    }
    g
}

/// Complete bipartite graph `K_{a,b}` (left part `0..a`, right part `a..a+b`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    Graph::from_edges(
        a + b,
        (0..a).flat_map(move |i| (a..a + b).map(move |j| (i, j))),
    )
}

/// `w × h` grid graph.
pub fn grid(w: usize, h: usize) -> Graph {
    let idx = move |x: usize, y: usize| y * w + x;
    let mut g = Graph::empty(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                g.add_edge(Node::from(idx(x, y)), Node::from(idx(x + 1, y)));
            }
            if y + 1 < h {
                g.add_edge(Node::from(idx(x, y)), Node::from(idx(x, y + 1)));
            }
        }
    }
    g
}

/// `w × h` torus (grid with wrap-around; requires `w, h >= 3`).
pub fn torus(w: usize, h: usize) -> Graph {
    assert!(w >= 3 && h >= 3, "torus needs both sides >= 3");
    let idx = move |x: usize, y: usize| y * w + x;
    let mut g = Graph::empty(w * h);
    for y in 0..h {
        for x in 0..w {
            g.add_edge(Node::from(idx(x, y)), Node::from(idx((x + 1) % w, y)));
            g.add_edge(Node::from(idx(x, y)), Node::from(idx(x, (y + 1) % h)));
        }
    }
    g
}

/// `d`-dimensional hypercube `Q_d` on `2^d` nodes.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut g = Graph::empty(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                g.add_edge(Node::from(v), Node::from(u));
            }
        }
    }
    g
}

/// Complete binary tree on `n` nodes (heap indexing: parent of `i` is
/// `(i-1)/2`).
pub fn binary_tree(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| ((i - 1) / 2, i)))
}

/// Caterpillar: a spine path of length `spine` with `legs` pendant nodes
/// attached to every spine node.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1);
    let n = spine + spine * legs;
    let mut g = Graph::empty(n);
    for i in 1..spine {
        g.add_edge(Node::from(i - 1), Node::from(i));
    }
    for s in 0..spine {
        for l in 0..legs {
            g.add_edge(Node::from(s), Node::from(spine + s * legs + l));
        }
    }
    g
}

/// Ring of `k` cliques of size `c`: clique `i` is joined to clique `i+1 mod k`
/// by a single bridge edge (requires `k >= 3`, `c >= 1`).
pub fn ring_of_cliques(k: usize, c: usize) -> Graph {
    assert!(k >= 3 && c >= 1);
    let mut g = Graph::empty(k * c);
    for q in 0..k {
        let base = q * c;
        for i in 0..c {
            for j in i + 1..c {
                g.add_edge(Node::from(base + i), Node::from(base + j));
            }
        }
        let next_base = ((q + 1) % k) * c;
        g.add_edge(Node::from(base), Node::from(next_base));
    }
    g
}

/// The Petersen graph (10 nodes, 15 edges, 3-regular).
pub fn petersen() -> Graph {
    let mut g = Graph::empty(10);
    for i in 0..5 {
        g.add_edge(Node::from(i), Node::from((i + 1) % 5)); // outer C5
        g.add_edge(Node::from(5 + i), Node::from(5 + (i + 2) % 5)); // inner pentagram
        g.add_edge(Node::from(i), Node::from(5 + i)); // spokes
    }
    g
}

/// Uniformly random labelled tree on `n` nodes via a random Prüfer sequence.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 1);
    if n == 1 {
        return Graph::empty(1);
    }
    if n == 2 {
        return Graph::from_edges(2, [(0, 1)]);
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    let mut g = Graph::empty(n);
    // Min-heap over leaves (nodes with degree 1 not yet attached).
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &p in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("prufer decode invariant");
        g.add_edge(Node::from(leaf), Node::from(p));
        degree[p] -= 1;
        if degree[p] == 1 {
            leaves.push(std::cmp::Reverse(p));
        }
    }
    let std::cmp::Reverse(u) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(v) = leaves.pop().expect("two leaves remain");
    g.add_edge(Node::from(u), Node::from(v));
    g
}

/// Erdős–Rényi `G(n, p)` conditioned on connectivity: samples until the graph
/// is connected (panics after 10 000 rejected samples — pick a sensible `p`).
pub fn erdos_renyi_connected<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p));
    for _ in 0..10_000 {
        let mut g = Graph::empty(n);
        for i in 0..n {
            for j in i + 1..n {
                if rng.random_bool(p) {
                    g.add_edge(Node::from(i), Node::from(j));
                }
            }
        }
        if is_connected(&g) {
            return g;
        }
    }
    panic!("G({n}, {p}) failed to produce a connected sample in 10000 tries");
}

/// Unit-disk graph on explicit 2-D positions: `{u, v}` is an edge iff the
/// Euclidean distance is at most `radius`. This is the standard connectivity
/// model for ad hoc radio networks.
///
/// Uses a spatial hash with cells of side `radius`: any edge's endpoints
/// fall in the same or adjacent cells, so only the 3×3 cell neighborhood is
/// scanned per point. On bounded-density inputs (uniform points, radius ~
/// √(log n / n)) this is O(n + m) instead of the naive O(n²), which is what
/// makes 10⁵-node geometric instances practical to generate.
pub fn unit_disk(positions: &[(f64, f64)], radius: f64) -> Graph {
    let n = positions.len();
    let r2 = radius * radius;
    let mut g = Graph::empty(n);
    let cell = radius.abs().max(f64::MIN_POSITIVE);
    let key = |p: (f64, f64)| ((p.0 / cell).floor() as i64, (p.1 / cell).floor() as i64);
    let mut buckets: std::collections::HashMap<(i64, i64), Vec<usize>> =
        std::collections::HashMap::new();
    for (i, &p) in positions.iter().enumerate() {
        buckets.entry(key(p)).or_default().push(i);
    }
    for (i, &p) in positions.iter().enumerate() {
        let (cx, cy) = key(p);
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(cands) = buckets.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &j in cands {
                    if j <= i {
                        continue;
                    }
                    let ddx = p.0 - positions[j].0;
                    let ddy = p.1 - positions[j].1;
                    if ddx * ddx + ddy * ddy <= r2 {
                        g.add_edge(Node::from(i), Node::from(j));
                    }
                }
            }
        }
    }
    g
}

/// Random geometric graph: `n` points uniform in the unit square, unit-disk
/// connectivity with the given radius, resampled until connected (panics
/// after 10 000 rejections).
pub fn random_geometric_connected<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> Graph {
    for _ in 0..10_000 {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        let g = unit_disk(&pts, radius);
        if is_connected(&g) {
            return g;
        }
    }
    panic!("random geometric graph (n={n}, r={radius}) failed to connect in 10000 tries");
}

/// The named structured topologies, for iterating experiment suites.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Family {
    /// Path `P_n`.
    Path,
    /// Cycle `C_n`.
    Cycle,
    /// Star `K_{1,n-1}`.
    Star,
    /// Complete graph `K_n`.
    Complete,
    /// Near-square grid with ~n nodes.
    Grid,
    /// Complete binary tree.
    BinaryTree,
    /// Hypercube with ~n nodes (n rounded down to a power of two).
    Hypercube,
}

impl Family {
    /// All structured families.
    pub const ALL: [Family; 7] = [
        Family::Path,
        Family::Cycle,
        Family::Star,
        Family::Complete,
        Family::Grid,
        Family::BinaryTree,
        Family::Hypercube,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::Star => "star",
            Family::Complete => "complete",
            Family::Grid => "grid",
            Family::BinaryTree => "binary-tree",
            Family::Hypercube => "hypercube",
        }
    }

    /// Build an instance with approximately `n` nodes (exact where possible).
    pub fn build(self, n: usize) -> Graph {
        match self {
            Family::Path => path(n),
            Family::Cycle => cycle(n.max(3)),
            Family::Star => star(n),
            Family::Complete => complete(n),
            Family::Grid => {
                let w = (n as f64).sqrt().round().max(1.0) as usize;
                let h = n.div_ceil(w);
                grid(w, h)
            }
            Family::BinaryTree => binary_tree(n),
            Family::Hypercube => {
                let d = usize::BITS - 1 - n.max(2).leading_zeros();
                hypercube(d)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_connected};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn structured_sizes() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(complete(5).m(), 10);
        assert_eq!(star(5).m(), 4);
        assert_eq!(wheel(5).m(), 8);
        assert_eq!(complete_bipartite(2, 3).m(), 6);
        assert_eq!(grid(3, 4).m(), 17);
        assert_eq!(torus(3, 3).m(), 18);
        assert_eq!(hypercube(3).m(), 12);
        assert_eq!(binary_tree(7).m(), 6);
        assert_eq!(caterpillar(3, 2).n(), 9);
        assert_eq!(caterpillar(3, 2).m(), 8);
        assert_eq!(ring_of_cliques(3, 3).n(), 9);
        assert_eq!(ring_of_cliques(3, 3).m(), 3 * 3 + 3);
    }

    #[test]
    fn petersen_is_cubic() {
        let g = petersen();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        assert_eq!(diameter(&g), Some(2));
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 3, 10, 57] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.n(), n);
            assert_eq!(g.m(), n.saturating_sub(1));
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn er_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_connected(40, 0.2, &mut rng);
        assert!(is_connected(&g));
        assert_eq!(g.n(), 40);
    }

    #[test]
    fn unit_disk_edges() {
        let pts = [(0.0, 0.0), (0.5, 0.0), (2.0, 0.0)];
        let g = unit_disk(&pts, 1.0);
        assert!(g.has_edge(Node(0), Node(1)));
        assert!(!g.has_edge(Node(0), Node(2)));
        assert!(!g.has_edge(Node(1), Node(2)), "distance 1.5 > 1.0");
    }

    #[test]
    fn unit_disk_bucketing_matches_naive_scan() {
        // The spatial hash must produce exactly the edge set of the
        // all-pairs definition, including points on cell boundaries.
        let mut rng = StdRng::seed_from_u64(17);
        for &radius in &[0.05, 0.2, 0.5, 1.5] {
            let pts: Vec<(f64, f64)> = (0..200)
                .map(|_| (rng.random::<f64>() * 3.0, rng.random::<f64>() * 3.0))
                .collect();
            let fast = unit_disk(&pts, radius);
            let r2 = radius * radius;
            let mut naive = Graph::empty(pts.len());
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                    if dx * dx + dy * dy <= r2 {
                        naive.add_edge(Node::from(i), Node::from(j));
                    }
                }
            }
            assert_eq!(fast.m(), naive.m(), "edge count at r={radius}");
            for e in naive.edges() {
                assert!(fast.has_edge(e.a, e.b), "missing {e:?} at r={radius}");
            }
        }
        // Exact cell-boundary distance is still an edge.
        let g = unit_disk(&[(0.0, 0.0), (1.0, 0.0)], 1.0);
        assert!(g.has_edge(Node(0), Node(1)));
    }

    #[test]
    fn geometric_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_geometric_connected(30, 0.4, &mut rng);
        assert!(is_connected(&g));
    }

    #[test]
    fn family_builds_connected_instances() {
        for fam in Family::ALL {
            let g = fam.build(16);
            assert!(is_connected(&g), "{} not connected", fam.name());
            assert!(g.n() >= 8, "{} too small: {}", fam.name(), g.n());
        }
        assert_eq!(Family::Hypercube.build(16).n(), 16);
        assert_eq!(Family::Hypercube.build(31).n(), 16);
        assert_eq!(Family::Grid.build(16).n(), 16);
    }
}
