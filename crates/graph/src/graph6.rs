//! The `graph6` exchange format (Brendan McKay's nauty suite).
//!
//! Lets the test- and experiment suites consume externally generated graph
//! catalogues (e.g. `geng`-enumerated connected graphs) and export instances
//! for cross-checking with other tools. Only the standard variant for
//! `n ≤ 62` and the 4-byte extension for `n ≤ 258047` are implemented —
//! ample for protocol experiments.

use crate::graph::{Graph, Node};

/// Errors from graph6 parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Graph6Error {
    /// Input was empty.
    Empty,
    /// A byte outside the printable graph6 range `63..=126`.
    BadByte(u8),
    /// Fewer bit-vector bytes than the header's node count requires.
    Truncated,
    /// Node counts above the supported range.
    TooLarge,
}

impl std::fmt::Display for Graph6Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Graph6Error::Empty => write!(f, "empty graph6 string"),
            Graph6Error::BadByte(b) => write!(f, "byte {b} outside graph6 range 63..=126"),
            Graph6Error::Truncated => write!(f, "graph6 string shorter than header requires"),
            Graph6Error::TooLarge => write!(f, "graph6 node count above supported range"),
        }
    }
}

impl std::error::Error for Graph6Error {}

fn check(b: u8) -> Result<u64, Graph6Error> {
    if (63..=126).contains(&b) {
        Ok((b - 63) as u64)
    } else {
        Err(Graph6Error::BadByte(b))
    }
}

/// Parse a graph6 line (without trailing newline) into a [`Graph`].
pub fn parse(s: &str) -> Result<Graph, Graph6Error> {
    let bytes = s.as_bytes();
    if bytes.is_empty() {
        return Err(Graph6Error::Empty);
    }
    let (n, mut pos) = if bytes[0] == 126 {
        if bytes.len() >= 2 && bytes[1] == 126 {
            return Err(Graph6Error::TooLarge); // 8-byte form (n > 258047)
        }
        if bytes.len() < 4 {
            return Err(Graph6Error::Truncated);
        }
        let n = (check(bytes[1])? << 12) | (check(bytes[2])? << 6) | check(bytes[3])?;
        (n as usize, 4usize)
    } else {
        (check(bytes[0])? as usize, 1usize)
    };
    let pairs = n * n.saturating_sub(1) / 2;
    let mut g = Graph::empty(n);
    let mut bit = 0usize;
    let mut current: u64 = 0;
    let mut remaining_bits = 0u32;
    let mut k = 0usize; // pair index in column-major (j, then i < j) order
    'outer: for j in 1..n {
        for i in 0..j {
            if remaining_bits == 0 {
                if pos >= bytes.len() {
                    return Err(Graph6Error::Truncated);
                }
                current = check(bytes[pos])?;
                pos += 1;
                remaining_bits = 6;
            }
            remaining_bits -= 1;
            if (current >> remaining_bits) & 1 == 1 {
                g.add_edge(Node::from(i), Node::from(j));
            }
            bit += 1;
            k += 1;
            if k == pairs {
                break 'outer;
            }
        }
    }
    let _ = bit;
    Ok(g)
}

/// Serialize a [`Graph`] as a graph6 line (no trailing newline).
pub fn to_graph6(g: &Graph) -> String {
    let n = g.n();
    assert!(
        n <= 258_047,
        "graph too large for the implemented graph6 forms"
    );
    let mut out: Vec<u8> = Vec::new();
    if n <= 62 {
        out.push(n as u8 + 63);
    } else {
        out.push(126);
        out.push(((n >> 12) & 63) as u8 + 63);
        out.push(((n >> 6) & 63) as u8 + 63);
        out.push((n & 63) as u8 + 63);
    }
    let mut current = 0u8;
    let mut bits = 0u32;
    for j in 1..n {
        for i in 0..j {
            current <<= 1;
            if g.has_edge(Node::from(i), Node::from(j)) {
                current |= 1;
            }
            bits += 1;
            if bits == 6 {
                out.push(current + 63);
                current = 0;
                bits = 0;
            }
        }
    }
    if bits > 0 {
        current <<= 6 - bits;
        out.push(current + 63);
    }
    String::from_utf8(out).expect("graph6 bytes are printable ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn known_encodings() {
        // From the nauty documentation: P5 paths etc. Simplest anchors:
        // K0 = "?", K1 = "@", K2 (one edge) = "A_", empty-2 = "A?".
        assert_eq!(to_graph6(&Graph::empty(0)), "?");
        assert_eq!(to_graph6(&Graph::empty(1)), "@");
        assert_eq!(to_graph6(&Graph::empty(2)), "A?");
        assert_eq!(to_graph6(&generators::path(2)), "A_");
        // Triangle K3 = "Bw".
        assert_eq!(to_graph6(&generators::complete(3)), "Bw");
    }

    #[test]
    fn roundtrip_structured_families() {
        for fam in generators::Family::ALL {
            for n in [3usize, 7, 20, 61] {
                let g = fam.build(n);
                let encoded = to_graph6(&g);
                let decoded = parse(&encoded).expect("roundtrip parse");
                assert_eq!(decoded, g, "{} n={n} via {encoded:?}", fam.name());
            }
        }
    }

    #[test]
    fn roundtrip_large_header() {
        let g = generators::cycle(100); // forces the 4-byte header
        let encoded = to_graph6(&g);
        assert_eq!(encoded.as_bytes()[0], 126);
        assert_eq!(parse(&encoded).unwrap(), g);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(parse(""), Err(Graph6Error::Empty));
        assert_eq!(parse("\u{1}"), Err(Graph6Error::BadByte(1)));
        assert_eq!(parse("C"), Err(Graph6Error::Truncated), "n=4 needs a body");
        assert_eq!(parse("~~"), Err(Graph6Error::TooLarge));
        assert_eq!(parse("~?"), Err(Graph6Error::Truncated));
    }

    #[test]
    fn random_roundtrip() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(42);
        for n in [5usize, 13, 33] {
            let g = generators::erdos_renyi_connected(n, 0.3, &mut rng);
            assert_eq!(parse(&to_graph6(&g)).unwrap(), g);
        }
    }
}
