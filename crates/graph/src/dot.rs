//! Graphviz DOT export for debugging and the examples.

use crate::graph::{Edge, Graph};
use crate::ids::Ids;
use std::collections::HashSet;
use std::fmt::Write;

/// Render `g` as a Graphviz `graph`, optionally labelling nodes with their
/// protocol IDs, bolding `highlight_edges` (e.g. the matching) and filling
/// `highlight_nodes` (e.g. the independent set).
pub fn to_dot(
    g: &Graph,
    ids: Option<&Ids>,
    highlight_edges: &[Edge],
    highlight_nodes: &[bool],
) -> String {
    let hl: HashSet<Edge> = highlight_edges.iter().copied().collect();
    let mut out = String::new();
    writeln!(out, "graph selfstab {{").unwrap();
    writeln!(out, "  node [shape=circle];").unwrap();
    for v in g.nodes() {
        let label = match ids {
            Some(ids) => format!("{}\\nid={}", v, ids.id(v)),
            None => format!("{v}"),
        };
        let style = if highlight_nodes.get(v.index()).copied().unwrap_or(false) {
            ", style=filled, fillcolor=lightblue"
        } else {
            ""
        };
        writeln!(out, "  {} [label=\"{}\"{}];", v.index(), label, style).unwrap();
    }
    for e in g.edges() {
        let attr = if hl.contains(&e) {
            " [penwidth=3, color=black]"
        } else {
            " [color=gray]"
        };
        writeln!(out, "  {} -- {}{};", e.a.index(), e.b.index(), attr).unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Node;

    #[test]
    fn renders_highlights() {
        let g = generators::path(3);
        let m = [Edge::new(Node(0), Node(1))];
        let s = to_dot(&g, Some(&Ids::identity(3)), &m, &[true, false, false]);
        assert!(s.contains("graph selfstab"));
        assert!(s.contains("0 -- 1 [penwidth=3"));
        assert!(s.contains("1 -- 2 [color=gray]"));
        assert!(s.contains("fillcolor=lightblue"));
        assert!(s.contains("id=2"));
    }

    #[test]
    fn renders_without_ids() {
        let g = generators::cycle(3);
        let s = to_dot(&g, None, &[], &[]);
        assert_eq!(s.matches(" -- ").count(), 3);
        assert!(!s.contains("id="));
    }
}
