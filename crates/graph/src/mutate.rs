//! Topology churn: the link creations and failures caused by host mobility.
//!
//! The paper's fault model (Section 2): links appear when two hosts move into
//! radio range and disappear when they move apart; node movement is
//! coordinated so the topology never disconnects. [`Churn`] reproduces that
//! model abstractly — random edge insertions, and random edge removals that
//! are rejected if they would disconnect the graph.

use crate::graph::{Edge, Graph, Node};
use crate::traversal::connected_without_edge;
use rand::{Rng, RngExt};

/// A single applied topology change.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TopologyEvent {
    /// A new logical link appeared.
    LinkUp(Edge),
    /// An existing logical link failed.
    LinkDown(Edge),
}

impl TopologyEvent {
    /// The edge touched by the event.
    pub fn edge(&self) -> Edge {
        match *self {
            TopologyEvent::LinkUp(e) | TopologyEvent::LinkDown(e) => e,
        }
    }
}

/// Connectivity-preserving random churn generator.
#[derive(Clone, Debug)]
pub struct Churn {
    /// Probability that a generated event is a link failure (vs. creation).
    pub p_down: f64,
}

impl Default for Churn {
    fn default() -> Self {
        Churn { p_down: 0.5 }
    }
}

impl Churn {
    /// Apply one random connectivity-preserving topology change to `g`.
    ///
    /// Returns `None` if no change is possible (e.g. the graph is complete
    /// and every edge is a bridge — impossible for `n >= 3`, but paths of
    /// length 1 can get stuck).
    pub fn apply_one<R: Rng + ?Sized>(&self, g: &mut Graph, rng: &mut R) -> Option<TopologyEvent> {
        let want_down = rng.random_bool(self.p_down);
        if want_down {
            self.remove_random(g, rng)
                .or_else(|| self.add_random(g, rng))
        } else {
            self.add_random(g, rng)
                .or_else(|| self.remove_random(g, rng))
        }
    }

    /// Apply `k` random changes; returns the events actually applied.
    pub fn apply<R: Rng + ?Sized>(
        &self,
        g: &mut Graph,
        k: usize,
        rng: &mut R,
    ) -> Vec<TopologyEvent> {
        (0..k).filter_map(|_| self.apply_one(g, rng)).collect()
    }

    /// Insert a uniformly random non-edge, if any exists.
    pub fn add_random<R: Rng + ?Sized>(&self, g: &mut Graph, rng: &mut R) -> Option<TopologyEvent> {
        let n = g.n();
        if n < 2 {
            return None;
        }
        let max_m = n * (n - 1) / 2;
        if g.m() == max_m {
            return None;
        }
        // Rejection sampling is fine: the density where it degrades
        // (near-complete graphs) has few candidate non-edges, and we fall
        // back to an exhaustive scan after enough rejections.
        for _ in 0..64 {
            let u = Node::from(rng.random_range(0..n));
            let v = Node::from(rng.random_range(0..n));
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v);
                return Some(TopologyEvent::LinkUp(Edge::new(u, v)));
            }
        }
        let mut non_edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let (u, v) = (Node::from(i), Node::from(j));
                if !g.has_edge(u, v) {
                    non_edges.push((u, v));
                }
            }
        }
        let &(u, v) = &non_edges[rng.random_range(0..non_edges.len())];
        g.add_edge(u, v);
        Some(TopologyEvent::LinkUp(Edge::new(u, v)))
    }

    /// Remove a uniformly random non-bridge edge, if any exists.
    pub fn remove_random<R: Rng + ?Sized>(
        &self,
        g: &mut Graph,
        rng: &mut R,
    ) -> Option<TopologyEvent> {
        let mut candidates: Vec<Edge> = g.edges().collect();
        // Fisher-Yates-style draw without replacement until a non-bridge is
        // found.
        while !candidates.is_empty() {
            let i = rng.random_range(0..candidates.len());
            let e = candidates.swap_remove(i);
            if connected_without_edge(g, e.a, e.b) {
                g.remove_edge(e.a, e.b);
                return Some(TopologyEvent::LinkDown(e));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn churn_preserves_connectivity() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut g = generators::cycle(20);
        let churn = Churn::default();
        let events = churn.apply(&mut g, 200, &mut rng);
        assert!(!events.is_empty());
        assert!(is_connected(&g));
    }

    #[test]
    fn tree_edges_never_removed() {
        // Every edge of a tree is a bridge, so only insertions can happen.
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = generators::path(6);
        let churn = Churn { p_down: 1.0 };
        let ev = churn
            .apply_one(&mut g, &mut rng)
            .expect("falls back to add");
        assert!(matches!(ev, TopologyEvent::LinkUp(_)));
        assert_eq!(g.m(), 6);
    }

    #[test]
    fn complete_graph_only_removals() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = generators::complete(5);
        let churn = Churn { p_down: 0.0 };
        let ev = churn
            .apply_one(&mut g, &mut rng)
            .expect("falls back to remove");
        assert!(matches!(ev, TopologyEvent::LinkDown(_)));
        assert_eq!(g.m(), 9);
        assert!(is_connected(&g));
    }

    #[test]
    fn two_node_tree_is_stuck() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = generators::path(2);
        let churn = Churn::default();
        assert!(churn.apply_one(&mut g, &mut rng).is_none());
    }

    #[test]
    fn dense_fallback_scan() {
        // Near-complete graph exercises the exhaustive non-edge scan.
        let mut rng = StdRng::seed_from_u64(9);
        let mut g = generators::complete(8);
        g.remove_edge(Node(0), Node(1));
        let churn = Churn { p_down: 0.0 };
        let ev = churn
            .add_random(&mut g, &mut rng)
            .expect("one non-edge left");
        assert_eq!(ev.edge(), Edge::new(Node(0), Node(1)));
    }
}
