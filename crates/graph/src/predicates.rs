//! Verification of the global predicates the protocols must establish.
//!
//! The whole point of a self-stabilizing protocol is that once it stabilizes,
//! a *global* predicate holds even though every node acted on *local*
//! knowledge. These checkers are the ground truth the test- and experiment
//! suites compare against; they are written for clarity, not speed.

use crate::graph::{Edge, Graph, Node};

/// Is `edges` a matching of `g` (pairwise disjoint edges of `g`)?
pub fn is_matching(g: &Graph, edges: &[Edge]) -> bool {
    let mut used = vec![false; g.n()];
    for e in edges {
        if !g.has_edge(e.a, e.b) {
            return false;
        }
        if used[e.a.index()] || used[e.b.index()] {
            return false;
        }
        used[e.a.index()] = true;
        used[e.b.index()] = true;
    }
    true
}

/// Is `edges` a *maximal* matching of `g`: a matching such that no edge of
/// `g` can be added (equivalently, every edge of `g` touches a matched node)?
pub fn is_maximal_matching(g: &Graph, edges: &[Edge]) -> bool {
    if !is_matching(g, edges) {
        return false;
    }
    let mut used = vec![false; g.n()];
    for e in edges {
        used[e.a.index()] = true;
        used[e.b.index()] = true;
    }
    g.edges().all(|e| used[e.a.index()] || used[e.b.index()])
}

/// Is `in_set` (indexed by node) an independent set of `g`?
pub fn is_independent_set(g: &Graph, in_set: &[bool]) -> bool {
    assert_eq!(in_set.len(), g.n());
    g.edges()
        .all(|e| !(in_set[e.a.index()] && in_set[e.b.index()]))
}

/// Is `in_set` a dominating set of `g`: every node is in the set or adjacent
/// to a member?
pub fn is_dominating_set(g: &Graph, in_set: &[bool]) -> bool {
    assert_eq!(in_set.len(), g.n());
    g.nodes()
        .all(|v| in_set[v.index()] || g.neighbors(v).iter().any(|&u| in_set[u.index()]))
}

/// Is `in_set` a *maximal* independent set of `g`?
///
/// A set is a maximal independent set iff it is independent **and**
/// dominating — the characterization the experiment suite checks.
pub fn is_maximal_independent_set(g: &Graph, in_set: &[bool]) -> bool {
    is_independent_set(g, in_set) && is_dominating_set(g, in_set)
}

/// Is `in_set` a *minimal* dominating set: dominating, and no proper subset
/// is dominating (equivalently every member has a private neighbor or is its
/// own private neighbor)?
pub fn is_minimal_dominating_set(g: &Graph, in_set: &[bool]) -> bool {
    if !is_dominating_set(g, in_set) {
        return false;
    }
    // Dropping any single member must break domination.
    let mut probe = in_set.to_vec();
    for v in g.nodes() {
        if !in_set[v.index()] {
            continue;
        }
        probe[v.index()] = false;
        if is_dominating_set(g, &probe) {
            return false;
        }
        probe[v.index()] = true;
    }
    true
}

/// The nodes saturated (covered) by a matching.
pub fn saturated_nodes(g: &Graph, edges: &[Edge]) -> Vec<bool> {
    let mut used = vec![false; g.n()];
    for e in edges {
        used[e.a.index()] = true;
        used[e.b.index()] = true;
    }
    used
}

/// Membership vector from a list of nodes.
pub fn membership(n: usize, set: impl IntoIterator<Item = Node>) -> Vec<bool> {
    let mut v = vec![false; n];
    for x in set {
        v[x.index()] = true;
    }
    v
}

/// How far Byzantine damage spread into the honest part of the graph.
///
/// Built by [`matching_containment`] / [`mis_containment`]: `perturbed` is
/// the set of *honest* nodes whose state violates the protocol's legitimacy
/// predicate restricted to the honest subgraph, and `radius` is the largest
/// BFS distance from the Byzantine set to any of them. A protocol
/// *contains* the adversary when the radius stays bounded by a small
/// constant independent of `n` — the Manne et al. argument for maximal
/// matching's mutual-pointer predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Containment {
    /// Honest nodes violating the honest-restricted legitimacy predicate,
    /// ascending.
    pub perturbed: Vec<Node>,
    /// Max BFS distance from the Byzantine set to a perturbed honest node:
    /// `0` when nothing is perturbed; [`usize::MAX`] when some perturbed
    /// node is unreachable from every Byzantine node (damage that cannot be
    /// attributed to the adversary — with an empty Byzantine set, any
    /// perturbation reports this).
    pub radius: usize,
}

impl Containment {
    /// Whether the honest subgraph satisfies the restricted predicate.
    pub fn honest_legitimate(&self) -> bool {
        self.perturbed.is_empty()
    }

    fn from_perturbed(g: &Graph, byz: &[bool], perturbed: Vec<Node>) -> Containment {
        let dist = byz_distances(g, byz);
        let radius = perturbed.iter().map(|v| dist[v.index()]).max().unwrap_or(0);
        Containment { perturbed, radius }
    }
}

/// Multi-source BFS distance from the Byzantine set (`byz` indexed by
/// node); [`usize::MAX`] for nodes unreachable from every source.
pub fn byz_distances(g: &Graph, byz: &[bool]) -> Vec<usize> {
    assert_eq!(byz.len(), g.n());
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    for v in g.nodes() {
        if byz[v.index()] {
            dist[v.index()] = 0;
            queue.push_back(v);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[v.index()] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Honest nodes violating the maximal-matching legitimacy predicate
/// restricted to the honest subgraph, given the protocol's pointer states.
///
/// An honest `v` is perturbed when:
/// * it points at a non-neighbor, a Byzantine node (captured by the
///   adversary), or an honest neighbor that does not point back; or
/// * it is null while some honest neighbor is also null (the honest
///   matching is not maximal) or points at it (an unanswered proposal).
pub fn matching_perturbed(g: &Graph, pointers: &[Option<Node>], byz: &[bool]) -> Vec<Node> {
    assert_eq!(pointers.len(), g.n());
    assert_eq!(byz.len(), g.n());
    let mut out = Vec::new();
    for v in g.nodes() {
        if byz[v.index()] {
            continue;
        }
        let bad = match pointers[v.index()] {
            Some(w) => !g.has_edge(v, w) || byz[w.index()] || pointers[w.index()] != Some(v),
            None => g.neighbors(v).iter().any(|&w| {
                !byz[w.index()] && (pointers[w.index()].is_none() || pointers[w.index()] == Some(v))
            }),
        };
        if bad {
            out.push(v);
        }
    }
    out
}

/// Honest nodes violating the maximal-independent-set legitimacy predicate
/// restricted to the honest subgraph.
///
/// An honest `v` is perturbed when:
/// * it is in the set together with an honest neighbor (independence broken
///   in the honest core); or
/// * it is out of the set with no neighbor at all claiming membership —
///   undominated. (A Byzantine neighbor's claimed membership counts: the
///   honest node acted correctly on what it heard; the damage shows up when
///   the adversary flips the claim and the neighborhood flaps.)
pub fn mis_perturbed(g: &Graph, in_set: &[bool], byz: &[bool]) -> Vec<Node> {
    assert_eq!(in_set.len(), g.n());
    assert_eq!(byz.len(), g.n());
    let mut out = Vec::new();
    for v in g.nodes() {
        if byz[v.index()] {
            continue;
        }
        let bad = if in_set[v.index()] {
            g.neighbors(v)
                .iter()
                .any(|&w| !byz[w.index()] && in_set[w.index()])
        } else {
            !g.neighbors(v).iter().any(|&w| in_set[w.index()])
        };
        if bad {
            out.push(v);
        }
    }
    out
}

/// Containment measurement for a maximal-matching state vector: the
/// honest-restricted violations of [`matching_perturbed`] plus their max
/// BFS distance from the Byzantine set.
pub fn matching_containment(g: &Graph, pointers: &[Option<Node>], byz: &[bool]) -> Containment {
    Containment::from_perturbed(g, byz, matching_perturbed(g, pointers, byz))
}

/// Containment measurement for a maximal-independent-set state vector: the
/// honest-restricted violations of [`mis_perturbed`] plus their max BFS
/// distance from the Byzantine set.
pub fn mis_containment(g: &Graph, in_set: &[bool], byz: &[bool]) -> Containment {
    Containment::from_perturbed(g, byz, mis_perturbed(g, in_set, byz))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(Node(a), Node(b))
    }

    #[test]
    fn matching_checks_on_path() {
        let g = generators::path(5); // 0-1-2-3-4
        assert!(is_matching(&g, &[e(0, 1), e(2, 3)]));
        assert!(!is_matching(&g, &[e(0, 1), e(1, 2)]), "shares node 1");
        assert!(!is_matching(&g, &[e(0, 2)]), "0-2 is not an edge");
        assert!(is_maximal_matching(&g, &[e(0, 1), e(2, 3)]));
        assert!(is_maximal_matching(&g, &[e(1, 2), e(3, 4)]));
        assert!(!is_maximal_matching(&g, &[e(0, 1)]), "3-4 still addable");
        assert!(is_matching(&g, &[]), "empty set is a matching");
        assert!(!is_maximal_matching(&g, &[]));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::empty(3);
        assert!(
            is_maximal_matching(&g, &[]),
            "no edges, empty matching maximal"
        );
        assert!(is_maximal_independent_set(&g, &[true, true, true]));
        assert!(!is_maximal_independent_set(&g, &[true, true, false]));
    }

    #[test]
    fn independence_and_domination_on_cycle() {
        let g = generators::cycle(5);
        let mis = membership(5, [Node(0), Node(2)]);
        assert!(is_independent_set(&g, &mis));
        assert!(is_dominating_set(&g, &mis));
        assert!(is_maximal_independent_set(&g, &mis));
        let too_big = membership(5, [Node(0), Node(1)]);
        assert!(!is_independent_set(&g, &too_big));
    }

    #[test]
    fn minimal_domination() {
        let g = generators::star(5);
        let hub = membership(5, [Node(0)]);
        assert!(is_minimal_dominating_set(&g, &hub));
        let hub_plus_leaf = membership(5, [Node(0), Node(1)]);
        assert!(is_dominating_set(&g, &hub_plus_leaf));
        assert!(!is_minimal_dominating_set(&g, &hub_plus_leaf));
        let leaves = membership(5, [Node(1), Node(2), Node(3), Node(4)]);
        assert!(
            is_minimal_dominating_set(&g, &leaves),
            "leaves dominate minimally"
        );
    }

    #[test]
    fn mis_is_minimal_dominating() {
        // Classic fact exercised by the clustering extension: any MIS is a
        // minimal dominating set.
        let g = generators::petersen();
        let mis = membership(10, [Node(0), Node(2), Node(8), Node(9)]);
        if is_maximal_independent_set(&g, &mis) {
            assert!(is_minimal_dominating_set(&g, &mis));
        }
    }

    #[test]
    fn saturated_nodes_tracks_matching() {
        let g = generators::path(4);
        let sat = saturated_nodes(&g, &[e(1, 2)]);
        assert_eq!(sat, vec![false, true, true, false]);
    }

    #[test]
    fn byz_distances_multi_source() {
        let g = generators::path(6); // 0-1-2-3-4-5
        let byz = membership(6, [Node(0), Node(5)]);
        assert_eq!(byz_distances(&g, &byz), vec![0, 1, 2, 2, 1, 0]);
        let none = membership(6, []);
        assert!(byz_distances(&g, &none).iter().all(|&d| d == usize::MAX));
    }

    #[test]
    fn matching_containment_flags_captured_and_dangling() {
        let g = generators::path(5); // 0-1-2-3-4, byz = 2
        let byz = membership(5, [Node(2)]);
        // 0↔1 mutually matched; 3 captured (points at byz 2); 4 null with
        // null honest neighbor? 3 is not null, so 4 is legitimate-null.
        let ptrs = vec![Some(Node(1)), Some(Node(0)), None, Some(Node(2)), None];
        let c = matching_containment(&g, &ptrs, &byz);
        assert_eq!(c.perturbed, vec![Node(3)]);
        assert_eq!(c.radius, 1, "capture is adjacent to the adversary");
        assert!(!c.honest_legitimate());
        // Fully repaired honest core: 3↔4 matched.
        let fixed = vec![
            Some(Node(1)),
            Some(Node(0)),
            None,
            Some(Node(4)),
            Some(Node(3)),
        ];
        let c = matching_containment(&g, &fixed, &byz);
        assert!(c.honest_legitimate());
        assert_eq!(c.radius, 0);
        // Dangling pointer far from the adversary: 4 points at 3, 3 null.
        let dangling = vec![Some(Node(1)), Some(Node(0)), None, None, Some(Node(3))];
        let c = matching_containment(&g, &dangling, &byz);
        assert_eq!(c.perturbed, vec![Node(3), Node(4)], "proposal unanswered");
        assert_eq!(c.radius, 2);
    }

    #[test]
    fn matching_containment_null_null_is_not_maximal() {
        let g = generators::path(4); // 0-1-2-3, no byz
        let byz = membership(4, []);
        let ptrs = vec![Some(Node(1)), Some(Node(0)), None, None];
        let c = matching_containment(&g, &ptrs, &byz);
        assert_eq!(c.perturbed, vec![Node(2), Node(3)]);
        assert_eq!(
            c.radius,
            usize::MAX,
            "no adversary to attribute the damage to"
        );
    }

    #[test]
    fn mis_containment_independence_and_domination() {
        let g = generators::path(5); // 0-1-2-3-4, byz = 2
        let byz = membership(5, [Node(2)]);
        // Star: byz hub claims membership, honest leaves legitimately out.
        let star = generators::star(5);
        let hub = membership(5, [Node(0)]);
        let in_set = vec![true, false, false, false, false];
        let c = mis_containment(&star, &in_set, &hub);
        assert!(c.honest_legitimate(), "byz claim dominates the leaves");
        // Byz hub flips out of the set: every leaf loses its dominator.
        let flipped = vec![false, false, false, false, false];
        let c = mis_containment(&star, &flipped, &hub);
        assert_eq!(c.perturbed.len(), 4);
        assert_eq!(c.radius, 1);
        // Honest-honest independence violation at distance 2.
        let clash = vec![true, true, false, false, true];
        let c = mis_containment(&g, &clash, &byz);
        assert_eq!(c.perturbed, vec![Node(0), Node(1)]);
        assert_eq!(c.radius, 2);
    }
}
