//! Verification of the global predicates the protocols must establish.
//!
//! The whole point of a self-stabilizing protocol is that once it stabilizes,
//! a *global* predicate holds even though every node acted on *local*
//! knowledge. These checkers are the ground truth the test- and experiment
//! suites compare against; they are written for clarity, not speed.

use crate::graph::{Edge, Graph, Node};

/// Is `edges` a matching of `g` (pairwise disjoint edges of `g`)?
pub fn is_matching(g: &Graph, edges: &[Edge]) -> bool {
    let mut used = vec![false; g.n()];
    for e in edges {
        if !g.has_edge(e.a, e.b) {
            return false;
        }
        if used[e.a.index()] || used[e.b.index()] {
            return false;
        }
        used[e.a.index()] = true;
        used[e.b.index()] = true;
    }
    true
}

/// Is `edges` a *maximal* matching of `g`: a matching such that no edge of
/// `g` can be added (equivalently, every edge of `g` touches a matched node)?
pub fn is_maximal_matching(g: &Graph, edges: &[Edge]) -> bool {
    if !is_matching(g, edges) {
        return false;
    }
    let mut used = vec![false; g.n()];
    for e in edges {
        used[e.a.index()] = true;
        used[e.b.index()] = true;
    }
    g.edges().all(|e| used[e.a.index()] || used[e.b.index()])
}

/// Is `in_set` (indexed by node) an independent set of `g`?
pub fn is_independent_set(g: &Graph, in_set: &[bool]) -> bool {
    assert_eq!(in_set.len(), g.n());
    g.edges()
        .all(|e| !(in_set[e.a.index()] && in_set[e.b.index()]))
}

/// Is `in_set` a dominating set of `g`: every node is in the set or adjacent
/// to a member?
pub fn is_dominating_set(g: &Graph, in_set: &[bool]) -> bool {
    assert_eq!(in_set.len(), g.n());
    g.nodes()
        .all(|v| in_set[v.index()] || g.neighbors(v).iter().any(|&u| in_set[u.index()]))
}

/// Is `in_set` a *maximal* independent set of `g`?
///
/// A set is a maximal independent set iff it is independent **and**
/// dominating — the characterization the experiment suite checks.
pub fn is_maximal_independent_set(g: &Graph, in_set: &[bool]) -> bool {
    is_independent_set(g, in_set) && is_dominating_set(g, in_set)
}

/// Is `in_set` a *minimal* dominating set: dominating, and no proper subset
/// is dominating (equivalently every member has a private neighbor or is its
/// own private neighbor)?
pub fn is_minimal_dominating_set(g: &Graph, in_set: &[bool]) -> bool {
    if !is_dominating_set(g, in_set) {
        return false;
    }
    // Dropping any single member must break domination.
    let mut probe = in_set.to_vec();
    for v in g.nodes() {
        if !in_set[v.index()] {
            continue;
        }
        probe[v.index()] = false;
        if is_dominating_set(g, &probe) {
            return false;
        }
        probe[v.index()] = true;
    }
    true
}

/// The nodes saturated (covered) by a matching.
pub fn saturated_nodes(g: &Graph, edges: &[Edge]) -> Vec<bool> {
    let mut used = vec![false; g.n()];
    for e in edges {
        used[e.a.index()] = true;
        used[e.b.index()] = true;
    }
    used
}

/// Membership vector from a list of nodes.
pub fn membership(n: usize, set: impl IntoIterator<Item = Node>) -> Vec<bool> {
    let mut v = vec![false; n];
    for x in set {
        v[x.index()] = true;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(Node(a), Node(b))
    }

    #[test]
    fn matching_checks_on_path() {
        let g = generators::path(5); // 0-1-2-3-4
        assert!(is_matching(&g, &[e(0, 1), e(2, 3)]));
        assert!(!is_matching(&g, &[e(0, 1), e(1, 2)]), "shares node 1");
        assert!(!is_matching(&g, &[e(0, 2)]), "0-2 is not an edge");
        assert!(is_maximal_matching(&g, &[e(0, 1), e(2, 3)]));
        assert!(is_maximal_matching(&g, &[e(1, 2), e(3, 4)]));
        assert!(!is_maximal_matching(&g, &[e(0, 1)]), "3-4 still addable");
        assert!(is_matching(&g, &[]), "empty set is a matching");
        assert!(!is_maximal_matching(&g, &[]));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::empty(3);
        assert!(
            is_maximal_matching(&g, &[]),
            "no edges, empty matching maximal"
        );
        assert!(is_maximal_independent_set(&g, &[true, true, true]));
        assert!(!is_maximal_independent_set(&g, &[true, true, false]));
    }

    #[test]
    fn independence_and_domination_on_cycle() {
        let g = generators::cycle(5);
        let mis = membership(5, [Node(0), Node(2)]);
        assert!(is_independent_set(&g, &mis));
        assert!(is_dominating_set(&g, &mis));
        assert!(is_maximal_independent_set(&g, &mis));
        let too_big = membership(5, [Node(0), Node(1)]);
        assert!(!is_independent_set(&g, &too_big));
    }

    #[test]
    fn minimal_domination() {
        let g = generators::star(5);
        let hub = membership(5, [Node(0)]);
        assert!(is_minimal_dominating_set(&g, &hub));
        let hub_plus_leaf = membership(5, [Node(0), Node(1)]);
        assert!(is_dominating_set(&g, &hub_plus_leaf));
        assert!(!is_minimal_dominating_set(&g, &hub_plus_leaf));
        let leaves = membership(5, [Node(1), Node(2), Node(3), Node(4)]);
        assert!(
            is_minimal_dominating_set(&g, &leaves),
            "leaves dominate minimally"
        );
    }

    #[test]
    fn mis_is_minimal_dominating() {
        // Classic fact exercised by the clustering extension: any MIS is a
        // minimal dominating set.
        let g = generators::petersen();
        let mis = membership(10, [Node(0), Node(2), Node(8), Node(9)]);
        if is_maximal_independent_set(&g, &mis) {
            assert!(is_minimal_dominating_set(&g, &mis));
        }
    }

    #[test]
    fn saturated_nodes_tracks_matching() {
        let g = generators::path(4);
        let sat = saturated_nodes(&g, &[e(1, 2)]);
        assert_eq!(sat, vec![false, true, true, false]);
    }
}
