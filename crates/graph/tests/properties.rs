//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_graph::generators;
use selfstab_graph::mutate::Churn;
use selfstab_graph::predicates::*;
use selfstab_graph::traversal::{bfs_distances, diameter, is_connected};
use selfstab_graph::{Graph, Ids, Node};

/// Strategy: an arbitrary simple graph on `n` nodes given by an edge-presence
/// bit per node pair.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), pairs).prop_map(move |bits| {
            let mut g = Graph::empty(n);
            let mut k = 0;
            for i in 0..n {
                for j in i + 1..n {
                    if bits[k] {
                        g.add_edge(Node::from(i), Node::from(j));
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

/// Strategy: a connected simple graph (random graph plus a random spanning
/// path to guarantee connectivity).
fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (arb_graph(max_n), any::<u64>()).prop_map(|(mut g, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let order = {
            use rand::seq::SliceRandom;
            let mut v: Vec<usize> = (0..g.n()).collect();
            v.shuffle(&mut rng);
            v
        };
        for w in order.windows(2) {
            g.add_edge(Node::from(w[0]), Node::from(w[1]));
        }
        g
    })
}

proptest! {
    #[test]
    fn degree_sum_is_twice_edge_count(g in arb_graph(12)) {
        prop_assert_eq!(g.degree_sum(), 2 * g.m());
    }

    #[test]
    fn edges_are_symmetric(g in arb_graph(10)) {
        for e in g.edges() {
            prop_assert!(g.has_edge(e.a, e.b));
            prop_assert!(g.has_edge(e.b, e.a));
            prop_assert!(g.neighbors(e.a).contains(&e.b));
            prop_assert!(g.neighbors(e.b).contains(&e.a));
        }
    }

    #[test]
    fn add_then_remove_roundtrips(g in arb_graph(10), a in 0usize..10, b in 0usize..10) {
        let mut g2 = g.clone();
        let n = g2.n();
        let (u, v) = (Node::from(a % n), Node::from(b % n));
        if u != v && !g2.has_edge(u, v) {
            prop_assert!(g2.add_edge(u, v));
            prop_assert!(g2.remove_edge(u, v));
            prop_assert_eq!(g2, g);
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_rule(g in arb_connected_graph(10)) {
        // Along every edge, distances from any source differ by at most 1.
        let d = bfs_distances(&g, Node(0));
        for e in g.edges() {
            let (da, db) = (d[e.a.index()], d[e.b.index()]);
            prop_assert!(da.abs_diff(db) <= 1);
        }
    }

    #[test]
    fn connected_graphs_have_diameter(g in arb_connected_graph(10)) {
        prop_assert!(is_connected(&g));
        let dia = diameter(&g).expect("connected");
        prop_assert!(dia < g.n());
    }

    #[test]
    fn churn_never_disconnects(g in arb_connected_graph(10), seed in any::<u64>(), k in 1usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = g;
        Churn::default().apply(&mut g, k, &mut rng);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn mis_predicate_equivalence(g in arb_graph(9), bits in proptest::collection::vec(any::<bool>(), 9)) {
        // MIS == independent + dominating == independent + not extendable.
        let set = &bits[..g.n()];
        let mis = is_maximal_independent_set(&g, set);
        let extendable = g.nodes().any(|v| {
            !set[v.index()]
                && g.neighbors(v).iter().all(|&u| !set[u.index()])
        });
        let indep = is_independent_set(&g, set);
        prop_assert_eq!(mis, indep && !extendable);
    }

    #[test]
    fn maximal_matching_not_extendable(g in arb_graph(9), seed in any::<u64>()) {
        // Build a greedy matching; it must pass the maximality predicate,
        // and dropping any edge must break maximality (on that subgraph).
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::seq::SliceRandom;
        let mut edges: Vec<_> = g.edges().collect();
        edges.shuffle(&mut rng);
        let mut used = vec![false; g.n()];
        let mut matching = Vec::new();
        for e in edges {
            if !used[e.a.index()] && !used[e.b.index()] {
                used[e.a.index()] = true;
                used[e.b.index()] = true;
                matching.push(e);
            }
        }
        prop_assert!(is_maximal_matching(&g, &matching));
    }

    #[test]
    fn ids_random_total_order(n in 2usize..40, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ids = Ids::random(n, &mut rng);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let (a, b) = (Node::from(i), Node::from(j));
                    prop_assert_eq!(ids.lt(a, b), !ids.lt(b, a) && ids.id(a) != ids.id(b));
                }
            }
        }
    }

    #[test]
    fn generators_are_connected(n in 4usize..40) {
        for fam in generators::Family::ALL {
            prop_assert!(is_connected(&fam.build(n)), "{}", fam.name());
        }
    }
}
