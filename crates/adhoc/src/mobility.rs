//! Random-waypoint mobility with coordinated (connectivity-preserving)
//! movement.
//!
//! Each host picks a uniformly random waypoint in the region and moves
//! toward it at its speed; on arrival it pauses and picks a new one — the
//! standard ad hoc mobility benchmark. The paper additionally assumes "the
//! movement of nodes is co-ordinated to ensure that the topology does not
//! get disconnected"; we honour that by *rejecting* any mobility step whose
//! resulting unit-disk graph would be disconnected (the hosts wait instead
//! of walking out of range).

use crate::geometry::{Point, Region};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_graph::traversal::is_connected;
use selfstab_graph::{generators, Graph};

/// Random-waypoint mobility state for a fleet of hosts.
#[derive(Debug)]
pub struct RandomWaypoint {
    region: Region,
    radius: f64,
    speed: f64,
    positions: Vec<Point>,
    waypoints: Vec<Point>,
    rng: StdRng,
}

/// Rejection-sampling budget for a connected deployment: for feasible
/// `(n, radius, region)` combinations a connected draw appears within a
/// handful of attempts, so exhausting this many means the density is
/// (almost surely) below the connectivity threshold.
const MAX_DEPLOY_ATTEMPTS: usize = 1024;

impl RandomWaypoint {
    /// Deploy `n` hosts uniformly at random; resamples deployments until the
    /// initial unit-disk graph (radio range `radius`) is connected.
    ///
    /// `speed` is distance per time unit. Panics if no connected deployment
    /// is found within the attempt budget — use [`RandomWaypoint::try_new`]
    /// to handle infeasible densities gracefully.
    pub fn new(n: usize, region: Region, radius: f64, speed: f64, seed: u64) -> Self {
        Self::try_new(n, region, radius, speed, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible deployment: rejection-samples up to a fixed attempt budget
    /// and reports failure instead of looping forever when the requested
    /// radio range cannot plausibly yield a connected unit-disk graph.
    pub fn try_new(
        n: usize,
        region: Region,
        radius: f64,
        speed: f64,
        seed: u64,
    ) -> Result<Self, String> {
        if n == 0 {
            return Err("random waypoint mobility needs at least one host".into());
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut positions = None;
        for _ in 0..MAX_DEPLOY_ATTEMPTS {
            let pts: Vec<Point> = (0..n).map(|_| region.sample(&mut rng)).collect();
            if is_connected(&udg(&pts, radius)) {
                positions = Some(pts);
                break;
            }
        }
        let Some(positions) = positions else {
            return Err(format!(
                "no connected deployment of {n} hosts at radius {radius} found in \
                 {MAX_DEPLOY_ATTEMPTS} attempts — the density is below the connectivity \
                 threshold; increase the radius or the host count"
            ));
        };
        let waypoints = (0..n).map(|_| region.sample(&mut rng)).collect();
        Ok(RandomWaypoint {
            region,
            radius,
            speed,
            positions,
            waypoints,
            rng,
        })
    }

    /// Current host positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Radio range.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The current unit-disk connectivity graph.
    pub fn graph(&self) -> Graph {
        udg(&self.positions, self.radius)
    }

    /// Advance time by `dt`. Hosts move one at a time toward their
    /// waypoints; a host's move is skipped (it waits) if it would
    /// disconnect the unit-disk graph. Returns the number of hosts that
    /// actually moved.
    pub fn step(&mut self, dt: f64) -> usize {
        let step_len = self.speed * dt;
        let mut moved = 0;
        for i in 0..self.positions.len() {
            let (candidate, reached) = self.positions[i].step_towards(self.waypoints[i], step_len);
            let old = self.positions[i];
            self.positions[i] = candidate;
            if is_connected(&udg(&self.positions, self.radius)) {
                moved += 1;
                if reached {
                    self.waypoints[i] = self.region.sample(&mut self.rng);
                }
            } else {
                // Coordinated movement: wait rather than disconnect, and
                // pick a fresh waypoint so the host does not push against
                // the same constraint forever.
                self.positions[i] = old;
                self.waypoints[i] = self.region.sample(&mut self.rng);
            }
        }
        moved
    }
}

/// Unit-disk graph over points.
pub fn udg(points: &[Point], radius: f64) -> Graph {
    let pts: Vec<(f64, f64)> = points.iter().map(|p| (p.x, p.y)).collect();
    generators::unit_disk(&pts, radius)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_is_connected() {
        let rw = RandomWaypoint::new(25, Region::unit(), 0.35, 0.05, 42);
        assert!(is_connected(&rw.graph()));
        assert_eq!(rw.positions().len(), 25);
    }

    #[test]
    fn steps_preserve_connectivity() {
        let mut rw = RandomWaypoint::new(20, Region::unit(), 0.35, 0.1, 7);
        for _ in 0..50 {
            rw.step(1.0);
            assert!(is_connected(&rw.graph()));
        }
    }

    #[test]
    fn hosts_actually_move_and_topology_changes() {
        let mut rw = RandomWaypoint::new(20, Region::unit(), 0.4, 0.1, 3);
        let before = rw.graph();
        let mut moved_total = 0;
        let mut changed = false;
        for _ in 0..100 {
            moved_total += rw.step(1.0);
            if rw.graph() != before {
                changed = true;
            }
        }
        assert!(moved_total > 0, "mobility must make progress");
        assert!(changed, "100 steps at speed 0.1 must change some link");
    }

    #[test]
    fn single_host_degenerate() {
        let mut rw = RandomWaypoint::new(1, Region::unit(), 0.2, 0.1, 1);
        for _ in 0..10 {
            rw.step(1.0);
        }
        assert_eq!(rw.graph().n(), 1);
    }

    #[test]
    fn infeasible_density_is_an_error_not_a_hang() {
        // A vanishing radius (vs the ~0.59 connectivity threshold for n=8)
        // can essentially never connect the deployment: try_new must give
        // up after its attempt budget instead of rejection-sampling forever.
        let err = RandomWaypoint::try_new(8, Region::unit(), 1e-6, 0.1, 5).unwrap_err();
        assert!(err.contains("no connected deployment"), "{err}");
        assert!(RandomWaypoint::try_new(0, Region::unit(), 0.5, 0.1, 5).is_err());
        // Feasible parameters still succeed through the fallible path.
        assert!(RandomWaypoint::try_new(10, Region::unit(), 0.5, 0.1, 5).is_ok());
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = RandomWaypoint::new(10, Region::unit(), 0.4, 0.1, 9);
        let mut b = RandomWaypoint::new(10, Region::unit(), 0.4, 0.1, 9);
        for _ in 0..20 {
            a.step(0.5);
            b.step(0.5);
        }
        assert_eq!(a.positions(), b.positions());
    }
}
