//! Random-waypoint mobility with coordinated (connectivity-preserving)
//! movement.
//!
//! Each host picks a uniformly random waypoint in the region and moves
//! toward it at its speed; on arrival it pauses and picks a new one — the
//! standard ad hoc mobility benchmark. The paper additionally assumes "the
//! movement of nodes is co-ordinated to ensure that the topology does not
//! get disconnected"; we honour that by *rejecting* any mobility step whose
//! resulting unit-disk graph would be disconnected (the hosts wait instead
//! of walking out of range).

use crate::geometry::{Point, Region};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_graph::traversal::is_connected;
use selfstab_graph::{generators, Graph};

/// Random-waypoint mobility state for a fleet of hosts.
#[derive(Debug)]
pub struct RandomWaypoint {
    region: Region,
    radius: f64,
    speed: f64,
    positions: Vec<Point>,
    waypoints: Vec<Point>,
    rng: StdRng,
}

impl RandomWaypoint {
    /// Deploy `n` hosts uniformly at random; resamples deployments until the
    /// initial unit-disk graph (radio range `radius`) is connected.
    ///
    /// `speed` is distance per time unit.
    pub fn new(n: usize, region: Region, radius: f64, speed: f64, seed: u64) -> Self {
        assert!(n >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let positions = loop {
            let pts: Vec<Point> = (0..n).map(|_| region.sample(&mut rng)).collect();
            if is_connected(&udg(&pts, radius)) {
                break pts;
            }
        };
        let waypoints = (0..n).map(|_| region.sample(&mut rng)).collect();
        RandomWaypoint {
            region,
            radius,
            speed,
            positions,
            waypoints,
            rng,
        }
    }

    /// Current host positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Radio range.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The current unit-disk connectivity graph.
    pub fn graph(&self) -> Graph {
        udg(&self.positions, self.radius)
    }

    /// Advance time by `dt`. Hosts move one at a time toward their
    /// waypoints; a host's move is skipped (it waits) if it would
    /// disconnect the unit-disk graph. Returns the number of hosts that
    /// actually moved.
    pub fn step(&mut self, dt: f64) -> usize {
        let step_len = self.speed * dt;
        let mut moved = 0;
        for i in 0..self.positions.len() {
            let (candidate, reached) = self.positions[i].step_towards(self.waypoints[i], step_len);
            let old = self.positions[i];
            self.positions[i] = candidate;
            if is_connected(&udg(&self.positions, self.radius)) {
                moved += 1;
                if reached {
                    self.waypoints[i] = self.region.sample(&mut self.rng);
                }
            } else {
                // Coordinated movement: wait rather than disconnect, and
                // pick a fresh waypoint so the host does not push against
                // the same constraint forever.
                self.positions[i] = old;
                self.waypoints[i] = self.region.sample(&mut self.rng);
            }
        }
        moved
    }
}

/// Unit-disk graph over points.
pub fn udg(points: &[Point], radius: f64) -> Graph {
    let pts: Vec<(f64, f64)> = points.iter().map(|p| (p.x, p.y)).collect();
    generators::unit_disk(&pts, radius)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_is_connected() {
        let rw = RandomWaypoint::new(25, Region::unit(), 0.35, 0.05, 42);
        assert!(is_connected(&rw.graph()));
        assert_eq!(rw.positions().len(), 25);
    }

    #[test]
    fn steps_preserve_connectivity() {
        let mut rw = RandomWaypoint::new(20, Region::unit(), 0.35, 0.1, 7);
        for _ in 0..50 {
            rw.step(1.0);
            assert!(is_connected(&rw.graph()));
        }
    }

    #[test]
    fn hosts_actually_move_and_topology_changes() {
        let mut rw = RandomWaypoint::new(20, Region::unit(), 0.4, 0.1, 3);
        let before = rw.graph();
        let mut moved_total = 0;
        let mut changed = false;
        for _ in 0..100 {
            moved_total += rw.step(1.0);
            if rw.graph() != before {
                changed = true;
            }
        }
        assert!(moved_total > 0, "mobility must make progress");
        assert!(changed, "100 steps at speed 0.1 must change some link");
    }

    #[test]
    fn single_host_degenerate() {
        let mut rw = RandomWaypoint::new(1, Region::unit(), 0.2, 0.1, 1);
        for _ in 0..10 {
            rw.step(1.0);
        }
        assert_eq!(rw.graph().n(), 1);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = RandomWaypoint::new(10, Region::unit(), 0.4, 0.1, 9);
        let mut b = RandomWaypoint::new(10, Region::unit(), 0.4, 0.1, 9);
        for _ in 0..20 {
            a.step(0.5);
            b.step(0.5);
        }
        assert_eq!(a.positions(), b.positions());
    }
}
