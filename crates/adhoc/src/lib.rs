//! The ad hoc network substrate of the paper's Section 2, as a
//! deterministic discrete-event simulation.
//!
//! The paper's system model:
//!
//! * every node broadcasts a **beacon** ("keep alive") message every `t_b`
//!   time units, carrying its protocol state;
//! * receiving a beacon from an unknown sender **creates** the logical link
//!   (neighbor discovery); missing a beacon for a timeout **removes** it;
//! * a node takes a protocol action after it has received beacons from
//!   **all** its (currently known) neighbors — one such period is a
//!   **round**, the unit of the paper's complexity analysis;
//! * topology changes come from host mobility, with movement coordinated so
//!   the network stays connected.
//!
//! We do not have radios, so radio reality is replaced by the closest
//! synthetic equivalent exercising the same code paths: a seeded
//! event-queue simulator ([`sim`]) in which beacons are events with
//! propagation delay and jitter, links are derived from unit-disk
//! connectivity over simulated positions ([`mobility`]) or from an explicit
//! static topology, and the paper's "round" emerges from the same
//! heard-from-every-neighbor bookkeeping a real implementation would use.
//!
//! Experiment E8 checks the central modelling claim: with aligned beacons
//! the emergent execution coincides *exactly* with the abstract synchronous
//! engine, and stabilization times measured in beacon periods match the
//! round counts of Theorems 1–2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geometry;
pub mod mobility;
pub mod sim;

pub use sim::{BeaconConfig, BeaconSim, SimReport, Topology};
