//! Plane geometry for the mobility model.

use rand::rngs::StdRng;
use rand::RngExt;

/// A point in the simulation plane.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(self, other: Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper; use for radius comparisons).
    pub fn dist2(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Move `step` towards `target`; lands exactly on `target` if closer
    /// than `step`. Returns the new point and whether the target was
    /// reached.
    pub fn step_towards(self, target: Point, step: f64) -> (Point, bool) {
        let d = self.dist(target);
        if d <= step || d == 0.0 {
            (target, true)
        } else {
            let f = step / d;
            (
                Point::new(
                    self.x + (target.x - self.x) * f,
                    self.y + (target.y - self.y) * f,
                ),
                false,
            )
        }
    }
}

/// A rectangular deployment region `[0, w] × [0, h]`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Region {
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
}

impl Region {
    /// The unit square.
    pub fn unit() -> Self {
        Region { w: 1.0, h: 1.0 }
    }

    /// A uniformly random point inside the region.
    pub fn sample(&self, rng: &mut StdRng) -> Point {
        Point::new(rng.random::<f64>() * self.w, rng.random::<f64>() * self.h)
    }

    /// Whether the point lies inside the region.
    pub fn contains(&self, p: Point) -> bool {
        (0.0..=self.w).contains(&p.x) && (0.0..=self.h).contains(&p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist2(b), 25.0);
    }

    #[test]
    fn step_towards_reaches_target() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let (p, reached) = a.step_towards(b, 0.4);
        assert!(!reached);
        assert!((p.x - 0.4).abs() < 1e-12);
        let (p, reached) = p.step_towards(b, 10.0);
        assert!(reached);
        assert_eq!(p, b);
        // Zero-distance degenerate case.
        let (p, reached) = b.step_towards(b, 0.1);
        assert!(reached);
        assert_eq!(p, b);
    }

    #[test]
    fn region_sampling_stays_inside() {
        let r = Region { w: 2.0, h: 3.0 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(r.contains(r.sample(&mut rng)));
        }
        assert!(!r.contains(Point::new(2.5, 1.0)));
    }
}
