//! The discrete-event beacon simulator.
//!
//! Everything in the paper's Section 2 happens here, as events on a seeded
//! queue:
//!
//! * every node broadcasts a beacon every `t_b` (± jitter) carrying its
//!   current protocol state; beacons arrive after a propagation delay;
//! * a receiver caches the sender's state, **discovers** unknown senders
//!   (link creation), and **expires** neighbors not heard from within the
//!   timeout (link failure);
//! * at its own beacon instant a node first *acts*: if it has heard from
//!   every currently-known neighbor since its previous action — the paper's
//!   definition of a **round** — it evaluates its rules on the cached
//!   states and adopts the move, which then rides on the outgoing beacon.
//!
//! With zero jitter and a static topology this reproduces the abstract
//! synchronous engine **exactly** (asserted in tests and experiment E8);
//! with jitter, delays, discovery, expiry and mobility it is the real
//! protocol stack the paper describes.

use crate::mobility::RandomWaypoint;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use selfstab_engine::adversary::AsymPlan;
use selfstab_engine::obs::{BeaconCounters, Observer, RoundStats};
use selfstab_engine::protocol::{InitialState, Protocol, View};
use selfstab_engine::sync::Outcome;
use selfstab_graph::{Graph, Node};
use selfstab_runtime::{FaultPlan, FrameFate};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in microseconds.
pub type Micros = u64;

/// Beacon-layer parameters.
#[derive(Clone, Debug)]
pub struct BeaconConfig {
    /// Beacon interval `t_b`.
    pub beacon_interval: Micros,
    /// Uniform jitter applied to each beacon interval: the next beacon
    /// fires after `t_b + U(-jitter, +jitter)`.
    pub jitter: Micros,
    /// Propagation + processing delay from send to delivery. Must be less
    /// than `beacon_interval - jitter` for beacons not to straddle periods.
    pub delay: Micros,
    /// A neighbor not heard from for this long is dropped (the paper uses
    /// one beacon period; a multiple tolerates jitter).
    pub timeout: Micros,
    /// Nodes do not act before this time, giving neighbor discovery one
    /// full exchange (a real deployment boots the same way).
    pub warmup: Micros,
    /// Probability that any single beacon delivery is lost (models the
    /// transient link failures the paper delegates to the link layer; the
    /// neighbor timeout must tolerate a few consecutive losses).
    pub loss: f64,
    /// Optional per-node beacon intervals (heterogeneous hardware); nodes
    /// without an entry use `beacon_interval`. The paper implicitly assumes
    /// a common `t_b`; rounds still emerge as long as every node's interval
    /// is finite.
    pub per_node_interval: Vec<(u32, Micros)>,
    /// Width of the slotted-medium collision window: two beacons arriving
    /// at the same receiver within this window destroy each other (`0`
    /// disables the model). The paper assumes the link layer resolves
    /// contention; enabling this *implements* that concern instead, and the
    /// contention experiment shows jitter is what resolves it.
    pub collision_window: Micros,
    /// RNG seed (jitter and losses).
    pub seed: u64,
    /// Record, once per beacon period, whether the protocol's global
    /// predicate currently holds on the ground-truth topology.
    pub sample_legitimacy: bool,
}

impl Default for BeaconConfig {
    fn default() -> Self {
        BeaconConfig {
            beacon_interval: 100_000, // 100 ms — a typical hello interval
            jitter: 0,
            delay: 5_000,
            timeout: 250_000,
            warmup: 100_000,
            loss: 0.0,
            per_node_interval: Vec::new(),
            collision_window: 0,
            seed: 0,
            sample_legitimacy: false,
        }
    }
}

impl BeaconConfig {
    /// A config with jitter, expressed as a fraction of the beacon interval
    /// (e.g. `0.05` for ±5%).
    pub fn with_jitter(mut self, fraction: f64) -> Self {
        self.jitter = (self.beacon_interval as f64 * fraction) as Micros;
        self
    }

    /// A config with per-delivery beacon loss probability; widens the
    /// neighbor timeout to tolerate a few consecutive losses.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss));
        self.loss = loss;
        self.timeout = self.timeout.max(5 * self.beacon_interval);
        self
    }

    /// A config enabling the slotted-medium collision model; widens the
    /// timeout since collided beacons behave like losses.
    pub fn with_collisions(mut self, window: Micros) -> Self {
        self.collision_window = window;
        self.timeout = self.timeout.max(5 * self.beacon_interval);
        self
    }

    /// The beacon interval of a specific node.
    fn interval_of(&self, node: Node) -> Micros {
        self.per_node_interval
            .iter()
            .find(|&&(v, _)| v == node.0)
            .map(|&(_, t)| t)
            .unwrap_or(self.beacon_interval)
    }
}

/// The ground-truth connectivity the radio layer sees.
// A simulation owns exactly one Topology, so the size skew between the
// variants is irrelevant; boxing the mobility model would only add noise.
#[allow(clippy::large_enum_variant)]
pub enum Topology {
    /// A fixed graph (links can still be edited mid-run via
    /// [`BeaconSim::set_link`]).
    Static(Graph),
    /// Hosts moving under random waypoint; connectivity is the unit-disk
    /// graph of current positions.
    Mobile {
        /// The mobility model.
        model: RandomWaypoint,
        /// How often positions advance.
        tick: Micros,
    },
}

impl Topology {
    fn n(&self) -> usize {
        match self {
            Topology::Static(g) => g.n(),
            Topology::Mobile { model, .. } => model.positions().len(),
        }
    }

    /// Current ground-truth graph.
    pub fn graph(&self) -> Graph {
        match self {
            Topology::Static(g) => g.clone(),
            Topology::Mobile { model, .. } => model.graph(),
        }
    }

    fn receivers(&self, src: Node) -> Vec<Node> {
        match self {
            Topology::Static(g) => g.neighbors(src).to_vec(),
            Topology::Mobile { model, .. } => {
                let pos = model.positions();
                let r2 = model.radius() * model.radius();
                let me = pos[src.index()];
                (0..pos.len())
                    .filter(|&i| i != src.index() && pos[i].dist2(me) <= r2)
                    .map(Node::from)
                    .collect()
            }
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum EventKind<S> {
    Beacon(Node),
    Deliver { dst: Node, src: Node, state: S },
    MobilityTick,
    Sample,
}

/// Per-receiver soft state about one neighbor.
#[derive(Clone, Debug)]
struct NeighborEntry<S> {
    state: S,
    last_heard: Micros,
    heard_since_action: bool,
}

/// What happened during a simulation run.
#[derive(Clone, Debug)]
pub struct SimReport<S> {
    /// Protocol states at the end of the run.
    pub final_states: Vec<S>,
    /// Beacons broadcast.
    pub beacons_sent: u64,
    /// Beacon deliveries (one per receiver in range).
    pub deliveries: u64,
    /// Beacon transmissions lost to the channel (per receiver).
    pub losses: u64,
    /// Beacon frames destroyed by medium contention (collision model).
    pub collisions: u64,
    /// Rule evaluations that were permitted (heard-from-all rounds).
    pub evaluations: u64,
    /// Evaluations that changed the node's state, per rule.
    pub moves_per_rule: Vec<u64>,
    /// Time of the last state change (0 if none).
    pub last_change: Micros,
    /// Time the simulation stopped.
    pub end_time: Micros,
    /// Whether the run ended because the system went quiet (no state change
    /// for the configured number of beacon periods).
    pub quiesced: bool,
    /// Stabilization time in beacon periods (last state change / `t_b`),
    /// meaningful when `quiesced`.
    pub stabilization_periods: f64,
    /// Per-period legitimacy samples (if enabled): did the global predicate
    /// hold on the ground-truth topology at each period boundary?
    pub legitimacy_samples: Vec<bool>,
    /// Rule evaluations per node (how many "rounds" each node completed).
    pub per_node_evaluations: Vec<u64>,
    /// State changes per node (a proxy for per-node energy spent on
    /// repairs; stabilization means these counters stop growing).
    pub per_node_moves: Vec<u64>,
    /// Ground-truth graph at the end of the run.
    pub final_graph: Graph,
}

impl<S> SimReport<S> {
    /// Fraction of sampled periods in which the global predicate held.
    pub fn legitimacy_fraction(&self) -> f64 {
        if self.legitimacy_samples.is_empty() {
            return f64::NAN;
        }
        self.legitimacy_samples.iter().filter(|&&b| b).count() as f64
            / self.legitimacy_samples.len() as f64
    }
}

/// The beacon-driven protocol runtime.
pub struct BeaconSim<'a, P: Protocol> {
    proto: &'a P,
    config: BeaconConfig,
    topology: Topology,
    states: Vec<P::State>,
    neighbors: Vec<Vec<(Node, NeighborEntry<P::State>)>>,
    scratch: Vec<P::State>,
    events: BinaryHeap<Reverse<(Micros, u64, usize)>>,
    payloads: Vec<Option<EventKind<P::State>>>,
    free_slots: Vec<usize>,
    seq: u64,
    rng: StdRng,
    now: Micros,
    beacons_sent: u64,
    deliveries: u64,
    losses: u64,
    evaluations: u64,
    moves_per_rule: Vec<u64>,
    last_change: Micros,
    legitimacy_samples: Vec<bool>,
    per_node_evaluations: Vec<u64>,
    per_node_moves: Vec<u64>,
    last_arrival: Vec<Micros>,
    collisions: u64,
    // Seeded fault plan shared with the sharded runtime: per-delivery
    // frame fates (drop / duplicate / delay / corrupt) and per-direction
    // asymmetric link failures, hashed on (seed, period, src, dst) — the
    // same fate a `run --shards --chaos` execution would draw.
    fault: Option<FaultPlan>,
    asym: Option<AsymPlan>,
    // Per-beacon-period counters, drained into a `RoundStats` at each
    // period boundary by `run_observed`. Kept up to date even when no
    // observer is attached (plain `u64` adds; the hook calls themselves are
    // compiled out for the `()` observer).
    period_moves_per_rule: Vec<u64>,
    period_changes: usize,
    period_evaluations: usize,
    period_deliveries: u64,
    period_losses: u64,
    period_collisions: u64,
    period_stale_views: u64,
    period_jitter_abs: u64,
}

impl<'a, P: Protocol> BeaconSim<'a, P> {
    /// Build a simulator. Nodes start with **no** neighbor knowledge
    /// (discovery fills it in) and the given initial protocol states.
    pub fn new(
        proto: &'a P,
        topology: Topology,
        init: InitialState<P::State>,
        config: BeaconConfig,
    ) -> Self {
        assert!(
            config.delay > 0,
            "zero delay would deliver within the send instant"
        );
        assert!(
            config.delay + config.jitter < config.beacon_interval,
            "delay + jitter must fit within one beacon period"
        );
        let n = topology.n();
        let graph_now = topology.graph();
        let states = init.materialize(&graph_now, proto);
        let scratch = vec![proto.default_state(); n];
        let mut sim = BeaconSim {
            proto,
            config: config.clone(),
            topology,
            states,
            neighbors: vec![Vec::new(); n],
            scratch,
            events: BinaryHeap::new(),
            payloads: Vec::new(),
            free_slots: Vec::new(),
            seq: 0,
            rng: StdRng::seed_from_u64(config.seed),
            now: 0,
            beacons_sent: 0,
            deliveries: 0,
            losses: 0,
            evaluations: 0,
            moves_per_rule: vec![0; proto.rule_names().len()],
            last_change: 0,
            legitimacy_samples: Vec::new(),
            per_node_evaluations: vec![0; n],
            per_node_moves: vec![0; n],
            last_arrival: vec![Micros::MAX; n],
            collisions: 0,
            fault: None,
            asym: None,
            period_moves_per_rule: vec![0; proto.rule_names().len()],
            period_changes: 0,
            period_evaluations: 0,
            period_deliveries: 0,
            period_losses: 0,
            period_collisions: 0,
            period_stale_views: 0,
            period_jitter_abs: 0,
        };
        for i in 0..n {
            sim.schedule(0, EventKind::Beacon(Node::from(i)));
        }
        if let Topology::Mobile { tick, .. } = sim.topology {
            sim.schedule(tick, EventKind::MobilityTick);
        }
        if sim.config.sample_legitimacy {
            sim.schedule(sim.config.beacon_interval, EventKind::Sample);
        }
        sim
    }

    fn schedule(&mut self, at: Micros, kind: EventKind<P::State>) {
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.payloads[s] = Some(kind);
                s
            }
            None => {
                self.payloads.push(Some(kind));
                self.payloads.len() - 1
            }
        };
        self.seq += 1;
        self.events.push(Reverse((at, self.seq, slot)));
    }

    /// Attach a seeded fault plan: the same per-frame fate hashing (and
    /// per-direction asymmetric link failures) the sharded runtime's chaos
    /// layer uses, keyed on the beacon period instead of the round. Widens
    /// the neighbor timeout like `with_loss` so fate-dropped beacons read
    /// as losses, not link failures. Byzantine rewrites are an
    /// executor-level concept and are not interpreted here.
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        if plan.drop > 0.0 || plan.corrupt > 0.0 || plan.asym > 0.0 || plan.delay_p > 0.0 {
            self.config.timeout = self.config.timeout.max(5 * self.config.beacon_interval);
        }
        self.asym = plan.asym_plan();
        self.fault = Some(plan);
        self
    }

    /// Edit a link of a static topology mid-run (models an abrupt radio
    /// obstruction or a new line of sight). Panics on mobile topologies.
    pub fn set_link(&mut self, u: Node, v: Node, up: bool) {
        match &mut self.topology {
            Topology::Static(g) => {
                if up {
                    g.add_edge(u, v);
                } else {
                    g.remove_edge(u, v);
                }
            }
            Topology::Mobile { .. } => panic!("links of a mobile topology follow positions"),
        }
    }

    /// Current protocol states (node-indexed).
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Current simulation time.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// A node acts at its beacon instant if it has heard from all known
    /// neighbors since its last action (the paper's round condition).
    fn try_act<O: Observer<P::State>>(&mut self, me: Node, obs: &mut O) {
        if self.now < self.config.warmup {
            return;
        }
        // Expire silent neighbors first (link-failure detection).
        let deadline = self.now.saturating_sub(self.config.timeout);
        self.neighbors[me.index()].retain(|(_, e)| e.last_heard >= deadline);
        if !self.neighbors[me.index()]
            .iter()
            .all(|(_, e)| e.heard_since_action)
        {
            return;
        }
        // Build the local view from cached neighbor states. A cached entry
        // older than one beacon period is *stale*: the evaluation proceeds
        // (the timeout has not expired it yet) but runs on information the
        // neighbor may already have superseded.
        let list = &self.neighbors[me.index()];
        let mut nbr_list: Vec<Node> = list.iter().map(|&(v, _)| v).collect();
        nbr_list.sort_unstable();
        for (v, e) in list {
            if self.now.saturating_sub(e.last_heard) > self.config.beacon_interval {
                self.period_stale_views += 1;
            }
            self.scratch[v.index()] = e.state.clone();
        }
        self.scratch[me.index()] = self.states[me.index()].clone();
        let view = View::new(me, &nbr_list, &self.scratch);
        self.evaluations += 1;
        self.per_node_evaluations[me.index()] += 1;
        self.period_evaluations += 1;
        let mv = self.proto.step(view);
        for (_, e) in &mut self.neighbors[me.index()] {
            e.heard_since_action = false;
        }
        if let Some(mv) = mv {
            self.moves_per_rule[mv.rule] += 1;
            self.period_moves_per_rule[mv.rule] += 1;
            self.period_changes += 1;
            self.per_node_moves[me.index()] += 1;
            self.states[me.index()] = mv.next;
            self.last_change = self.now;
            if O::ENABLED {
                obs.on_move(me, mv.rule, &self.states[me.index()]);
            }
        }
    }

    fn handle_beacon<O: Observer<P::State>>(&mut self, me: Node, obs: &mut O) {
        self.try_act(me, obs);
        // Broadcast the (possibly updated) state to everyone in range.
        let receivers = self.topology.receivers(me);
        self.beacons_sent += 1;
        let period = (self.now / self.config.beacon_interval) as usize;
        for dst in receivers {
            if self.config.loss > 0.0 && self.rng.random_bool(self.config.loss) {
                self.losses += 1;
                self.period_losses += 1;
                continue;
            }
            // Asymmetric link failure: this direction of the radio link is
            // down for the whole beacon period (the reverse direction draws
            // its own fate).
            if let Some(a) = &self.asym {
                if !a.link_up(period, me, dst) {
                    self.losses += 1;
                    self.period_losses += 1;
                    continue;
                }
            }
            let mut at = self.now + self.config.delay;
            let mut copies = 1u32;
            if let Some(f) = &self.fault {
                match f.fate(period, me, dst.index()) {
                    FrameFate::Deliver => {}
                    // A corrupted frame fails its checksum at the receiver
                    // and is discarded — indistinguishable from a loss.
                    FrameFate::Drop | FrameFate::Corrupt => {
                        self.losses += 1;
                        self.period_losses += 1;
                        continue;
                    }
                    FrameFate::Delay => {
                        at += f.delay_rounds as Micros * self.config.beacon_interval;
                    }
                    FrameFate::Duplicate => copies = 2,
                }
            }
            for _ in 0..copies {
                self.schedule(
                    at,
                    EventKind::Deliver {
                        dst,
                        src: me,
                        state: self.states[me.index()].clone(),
                    },
                );
            }
        }
        let jitter = if self.config.jitter == 0 {
            0i64
        } else {
            self.rng
                .random_range(-(self.config.jitter as i64)..=self.config.jitter as i64)
        };
        self.period_jitter_abs += jitter.unsigned_abs();
        let base = self.config.interval_of(me);
        let next = self.now + (base as i64 + jitter) as Micros;
        self.schedule(next, EventKind::Beacon(me));
    }

    fn handle_deliver(&mut self, dst: Node, src: Node, state: P::State) {
        if self.config.collision_window > 0 {
            let last = self.last_arrival[dst.index()];
            self.last_arrival[dst.index()] = self.now;
            if last != Micros::MAX && self.now.saturating_sub(last) < self.config.collision_window {
                // Slotted-medium collision: the overlapping frame is lost
                // (capture model: the earlier frame survives).
                self.collisions += 1;
                self.period_collisions += 1;
                return;
            }
        }
        self.deliveries += 1;
        self.period_deliveries += 1;
        let list = &mut self.neighbors[dst.index()];
        match list.iter_mut().find(|(v, _)| *v == src) {
            Some((_, e)) => {
                e.state = state;
                e.last_heard = self.now;
                e.heard_since_action = true;
            }
            None => {
                // Neighbor discovery: unknown sender => the link (dst, src)
                // is established.
                list.push((
                    src,
                    NeighborEntry {
                        state,
                        last_heard: self.now,
                        heard_since_action: true,
                    },
                ));
            }
        }
    }

    /// Drain the current beacon period's counters into a [`RoundStats`] and
    /// report it. `duration_micros` is *simulated* time (one beacon period).
    /// The `privileged` field carries the number of state changes in the
    /// period: under a beacon daemon the engine's notion of a privileged
    /// set is unobservable, so the closest live quantity — nodes that
    /// actually moved — stands in for it.
    fn flush_period<O: Observer<P::State>>(&mut self, period: usize, obs: &mut O) {
        let beacon = BeaconCounters {
            deliveries: std::mem::take(&mut self.period_deliveries),
            losses: std::mem::take(&mut self.period_losses),
            collisions: std::mem::take(&mut self.period_collisions),
            stale_views: std::mem::take(&mut self.period_stale_views),
            jitter_abs_sum_micros: std::mem::take(&mut self.period_jitter_abs),
        };
        let stats = RoundStats {
            round: period,
            privileged: std::mem::take(&mut self.period_changes),
            evaluated: std::mem::take(&mut self.period_evaluations),
            moves_per_rule: std::mem::replace(
                &mut self.period_moves_per_rule,
                vec![0; self.moves_per_rule.len()],
            ),
            duration_micros: self.config.beacon_interval,
            beacon: Some(beacon),
            runtime: None,
            profile: None,
        };
        obs.on_round_end(&stats, &self.states);
    }

    /// Run until the system has been quiet (no state change) for
    /// `quiet_periods` beacon periods after warmup, or until `max_time`.
    pub fn run(self, quiet_periods: u64, max_time: Micros) -> SimReport<P::State> {
        self.run_observed(quiet_periods, max_time, &mut ())
    }

    /// Run like [`BeaconSim::run`], firing the [`Observer`] hooks once per
    /// **beacon period** (`t_b` of simulated time): the sim has no global
    /// round barrier, so periods stand in for rounds. Period `k` (1-based)
    /// covers `[(k-1)·t_b, k·t_b)`; `on_round_start(k)` fires at its first
    /// event, `on_move` at every state change within it, and `on_round_end`
    /// at the boundary with a [`RoundStats`] whose `beacon` field carries
    /// the period's channel counters (deliveries, losses, collisions, stale
    /// views used in evaluations, and the summed |jitter| drawn). The final
    /// period may be partial; `on_finish` reports [`Outcome::Stabilized`]
    /// when the run quiesced and [`Outcome::RoundLimit`] when `max_time`
    /// cut it off.
    pub fn run_observed<O: Observer<P::State>>(
        mut self,
        quiet_periods: u64,
        max_time: Micros,
        obs: &mut O,
    ) -> SimReport<P::State> {
        let quiet = quiet_periods * self.config.beacon_interval;
        let mut quiesced = false;
        let mut period: usize = 1;
        if O::ENABLED {
            obs.on_round_start(period, &self.states);
        }
        while let Some(Reverse((t, _, slot))) = self.events.pop() {
            if t > max_time {
                break;
            }
            // Close out every beacon period that ended before this event.
            while O::ENABLED && t >= period as Micros * self.config.beacon_interval {
                self.flush_period(period, obs);
                period += 1;
                obs.on_round_start(period, &self.states);
            }
            self.now = t;
            let low_water = self.last_change.max(self.config.warmup);
            if self.now > low_water + quiet {
                quiesced = true;
                break;
            }
            let kind = self.payloads[slot].take().expect("event payload present");
            self.free_slots.push(slot);
            match kind {
                EventKind::Beacon(me) => self.handle_beacon(me, obs),
                EventKind::Deliver { dst, src, state } => self.handle_deliver(dst, src, state),
                EventKind::MobilityTick => {
                    if let Topology::Mobile { model, tick } = &mut self.topology {
                        let dt = *tick as f64 / 1_000_000.0;
                        model.step(dt);
                        let tick = *tick;
                        self.schedule(self.now + tick, EventKind::MobilityTick);
                    }
                }
                EventKind::Sample => {
                    let g = self.topology.graph();
                    self.legitimacy_samples
                        .push(self.proto.is_legitimate(&g, &self.states));
                    self.schedule(self.now + self.config.beacon_interval, EventKind::Sample);
                }
            }
        }
        if O::ENABLED {
            self.flush_period(period, obs);
            let outcome = if quiesced {
                Outcome::Stabilized
            } else {
                Outcome::RoundLimit
            };
            obs.on_finish(&outcome, &self.states);
        }
        let stabilization_periods = self.last_change as f64 / self.config.beacon_interval as f64;
        SimReport {
            final_states: self.states,
            beacons_sent: self.beacons_sent,
            deliveries: self.deliveries,
            losses: self.losses,
            collisions: self.collisions,
            evaluations: self.evaluations,
            moves_per_rule: self.moves_per_rule,
            last_change: self.last_change,
            end_time: self.now,
            quiesced,
            stabilization_periods,
            legitimacy_samples: self.legitimacy_samples,
            per_node_evaluations: self.per_node_evaluations,
            per_node_moves: self.per_node_moves,
            final_graph: self.topology.graph(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Region;
    use selfstab_core::smm::Smm;
    use selfstab_core::Smi;
    use selfstab_engine::sync::SyncExecutor;
    use selfstab_graph::predicates::{is_maximal_independent_set, is_maximal_matching};
    use selfstab_graph::{generators, Ids};

    const MS: Micros = 1_000;

    fn cfg() -> BeaconConfig {
        BeaconConfig {
            beacon_interval: 100 * MS,
            jitter: 0,
            delay: 5 * MS,
            timeout: 250 * MS,
            warmup: 100 * MS,
            loss: 0.0,
            per_node_interval: Vec::new(),
            collision_window: 0,
            seed: 1,
            sample_legitimacy: false,
        }
    }

    #[test]
    fn zero_jitter_matches_synchronous_engine_exactly() {
        for fam in generators::Family::ALL {
            let g = fam.build(12);
            let n = g.n();
            let smm = Smm::paper(Ids::identity(n));
            for seed in 0..5 {
                let sync = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed }, n + 1);
                assert!(sync.stabilized());
                let sim = BeaconSim::new(
                    &smm,
                    Topology::Static(g.clone()),
                    InitialState::Random { seed },
                    cfg(),
                );
                let report = sim.run(5, 60_000 * MS);
                assert!(report.quiesced, "{}", fam.name());
                assert_eq!(
                    report.final_states,
                    sync.final_states,
                    "beacon sim must equal sync engine on {}",
                    fam.name()
                );
                // Beacon periods == synchronous rounds (warmup consumes the
                // discovery period; evaluation k happens at period k).
                assert_eq!(
                    report.stabilization_periods as usize,
                    sync.rounds(),
                    "{} seed {seed}",
                    fam.name()
                );
            }
        }
    }

    #[test]
    fn jittered_beacons_still_stabilize_smm() {
        let g = generators::grid(4, 4);
        let smm = Smm::paper(Ids::identity(16));
        let sim = BeaconSim::new(
            &smm,
            Topology::Static(g.clone()),
            InitialState::Random { seed: 3 },
            cfg().with_jitter(0.05),
        );
        let report = sim.run(5, 600_000 * MS);
        assert!(report.quiesced);
        let m = Smm::matched_edges(&g, &report.final_states);
        assert!(is_maximal_matching(&g, &m));
    }

    #[test]
    fn jittered_beacons_still_stabilize_smi() {
        let g = generators::cycle(15);
        let smi = Smi::new(Ids::identity(15));
        let sim = BeaconSim::new(
            &smi,
            Topology::Static(g.clone()),
            InitialState::Random { seed: 9 },
            cfg().with_jitter(0.08),
        );
        let report = sim.run(5, 600_000 * MS);
        assert!(report.quiesced);
        assert!(is_maximal_independent_set(&g, &report.final_states));
    }

    #[test]
    fn link_failure_is_detected_and_repaired() {
        // Stabilize on a path, then cut the link inside a matched pair; the
        // two endpoints must time the neighbor out, reset their dangling
        // pointers (R0), and rematch with others where possible.
        let g = generators::path(4);
        let smm = Smm::paper(Ids::identity(4));
        let sync = SyncExecutor::new(&g, &smm).run(InitialState::Default, 5);
        assert!(sync.stabilized());
        let m = Smm::matched_edges(&g, &sync.final_states);
        assert_eq!(m.len(), 2, "P4 from all-null matches 0-1 and 2-3");

        let mut sim = BeaconSim::new(
            &smm,
            Topology::Static(g.clone()),
            InitialState::Explicit(sync.final_states.clone()),
            cfg(),
        );
        sim.set_link(Node(0), Node(1), false); // cut the matched pair 0-1
        let report = sim.run(8, 600_000 * MS);
        assert!(report.quiesced);
        let mut surviving = g.clone();
        surviving.remove_edge(Node(0), Node(1));
        let m = Smm::matched_edges(&surviving, &report.final_states);
        assert!(
            is_maximal_matching(&surviving, &m),
            "post-failure matching {m:?} not maximal on the surviving graph"
        );
        // The 2↔3 pair is undisturbed; 0 is isolated and 1's only neighbor
        // is taken, so both must have reset their dangling pointers (R0).
        assert_eq!(m, vec![selfstab_graph::Edge::new(Node(2), Node(3))]);
        assert!(report.final_states[0].is_null(), "R0 cleared node 0");
        assert!(report.final_states[1].is_null(), "R0 cleared node 1");
        assert!(report.moves_per_rule[selfstab_core::smm::rule::RESET] >= 2);
    }

    #[test]
    fn link_failure_allows_rematch() {
        // Path of 3: stabilize (1↔2 or 0↔1 depending on IDs), cut the
        // matched edge, and check the freed endpoint rematches with the
        // remaining neighbor.
        let g = generators::path(3);
        let smm = Smm::paper(Ids::identity(3));
        let sync = SyncExecutor::new(&g, &smm).run(InitialState::Default, 4);
        assert!(sync.stabilized());
        let m0 = Smm::matched_edges(&g, &sync.final_states);
        assert_eq!(m0, vec![selfstab_graph::Edge::new(Node(0), Node(1))]);

        let mut sim = BeaconSim::new(
            &smm,
            Topology::Static(g.clone()),
            InitialState::Explicit(sync.final_states.clone()),
            cfg(),
        );
        sim.set_link(Node(0), Node(1), false);
        let report = sim.run(8, 600_000 * MS);
        assert!(report.quiesced);
        let mut surviving = g.clone();
        surviving.remove_edge(Node(0), Node(1));
        let m = Smm::matched_edges(&surviving, &report.final_states);
        assert_eq!(
            m,
            vec![selfstab_graph::Edge::new(Node(1), Node(2))],
            "node 1 must rematch with node 2 after losing node 0"
        );
    }

    #[test]
    fn neighbor_discovery_from_cold_start() {
        // All nodes boot with empty neighbor lists; discovery must converge
        // and SMI must still produce an MIS.
        let g = generators::star(8);
        let smi = Smi::new(Ids::reversed(8));
        let sim = BeaconSim::new(
            &smi,
            Topology::Static(g.clone()),
            InitialState::Default,
            cfg(),
        );
        let report = sim.run(5, 600_000 * MS);
        assert!(report.quiesced);
        assert!(is_maximal_independent_set(&g, &report.final_states));
        // Center has the largest ID (reversed), so it alone is in the set.
        assert!(report.final_states[0]);
        assert_eq!(report.final_states.iter().filter(|&&x| x).count(), 1);
    }

    #[test]
    fn mobility_run_repairs_continuously() {
        let model = RandomWaypoint::new(16, Region::unit(), 0.45, 0.02, 4);
        let smi = Smi::new(Ids::identity(16));
        let mut config = cfg();
        config.sample_legitimacy = true;
        let sim = BeaconSim::new(
            &smi,
            Topology::Mobile {
                model,
                tick: 100 * MS,
            },
            InitialState::Default,
            config,
        );
        // Mobility never quiesces; run for a fixed horizon.
        let report = sim.run(u64::MAX / (200 * MS), 30_000 * MS);
        assert!(!report.legitimacy_samples.is_empty());
        // The predicate should hold most of the time despite churn.
        assert!(
            report.legitimacy_fraction() > 0.5,
            "predicate held only {:.0}% of periods",
            100.0 * report.legitimacy_fraction()
        );
    }

    #[test]
    fn counters_are_consistent() {
        let g = generators::cycle(6);
        let smm = Smm::paper(Ids::identity(6));
        let report = BeaconSim::new(&smm, Topology::Static(g), InitialState::Default, cfg())
            .run(3, 600_000 * MS);
        assert!(report.beacons_sent >= 6);
        assert!(
            report.deliveries > report.beacons_sent,
            "degree-2 nodes double deliveries"
        );
        assert!(report.evaluations > 0);
        assert!(report.moves_per_rule.iter().sum::<u64>() > 0);
        assert!(report.end_time >= report.last_change);
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;
    use selfstab_core::smm::Smm;
    use selfstab_core::Smi;
    use selfstab_engine::protocol::InitialState;
    use selfstab_graph::predicates::{is_maximal_independent_set, is_maximal_matching};
    use selfstab_graph::{generators, Ids};

    const MS: Micros = 1_000;

    #[test]
    fn smm_stabilizes_despite_20_percent_loss() {
        let g = generators::grid(4, 4);
        let smm = Smm::paper(Ids::identity(16));
        let cfg = BeaconConfig {
            seed: 3,
            ..BeaconConfig::default()
        }
        .with_loss(0.2);
        let report = BeaconSim::new(
            &smm,
            Topology::Static(g.clone()),
            InitialState::Random { seed: 4 },
            cfg,
        )
        .run(8, 3_600_000 * MS);
        assert!(report.quiesced);
        assert!(report.losses > 0, "the channel must actually drop beacons");
        let m = Smm::matched_edges(&g, &report.final_states);
        assert!(is_maximal_matching(&g, &m));
    }

    #[test]
    fn smm_stabilizes_under_chaos_fault_plan() {
        // Seeded smoke: the runtime's fate-hashed fault plan (drops +
        // asymmetric link failures) drives the beacon channel, and the
        // protocol still reaches a maximal matching.
        let g = generators::grid(4, 4);
        let smm = Smm::paper(Ids::identity(16));
        let cfg = BeaconConfig {
            seed: 7,
            ..BeaconConfig::default()
        };
        let plan = selfstab_runtime::FaultPlan::parse_spec("drop=0.15,asym=0.1", 0xc4a05)
            .expect("valid chaos spec");
        let report = BeaconSim::new(
            &smm,
            Topology::Static(g.clone()),
            InitialState::Random { seed: 4 },
            cfg,
        )
        .with_chaos(plan)
        .run(8, 3_600_000 * MS);
        assert!(report.quiesced);
        assert!(report.losses > 0, "the fault plan must drop beacons");
        let m = Smm::matched_edges(&g, &report.final_states);
        assert!(is_maximal_matching(&g, &m));
    }

    #[test]
    fn smi_stabilizes_despite_heavy_loss() {
        let g = generators::cycle(10);
        let smi = Smi::new(Ids::identity(10));
        let cfg = BeaconConfig {
            seed: 5,
            ..BeaconConfig::default()
        }
        .with_loss(0.4);
        let report = BeaconSim::new(
            &smi,
            Topology::Static(g.clone()),
            InitialState::Default,
            cfg,
        )
        .run(10, 3_600_000 * MS);
        assert!(report.quiesced);
        assert!(is_maximal_independent_set(&g, &report.final_states));
    }

    #[test]
    fn loss_slows_but_does_not_break_convergence() {
        let g = generators::path(8);
        let smm = Smm::paper(Ids::identity(8));
        let mut periods = Vec::new();
        for loss in [0.0, 0.3] {
            let mut cfg = BeaconConfig {
                seed: 9,
                ..BeaconConfig::default()
            };
            if loss > 0.0 {
                cfg = cfg.with_loss(loss);
            }
            let report = BeaconSim::new(
                &smm,
                Topology::Static(g.clone()),
                InitialState::Random { seed: 1 },
                cfg,
            )
            .run(8, 3_600_000 * MS);
            assert!(report.quiesced, "loss={loss}");
            assert!(smm.is_legitimate(&g, &report.final_states));
            periods.push(report.stabilization_periods);
        }
        assert!(
            periods[1] >= periods[0],
            "lossy channel should not beat the lossless one: {periods:?}"
        );
    }

    #[test]
    fn loss_counter_statistics_are_plausible() {
        let g = generators::complete(6);
        let smi = Smi::new(Ids::identity(6));
        let cfg = BeaconConfig {
            seed: 11,
            ..BeaconConfig::default()
        }
        .with_loss(0.25);
        let report = BeaconSim::new(&smi, Topology::Static(g), InitialState::Default, cfg)
            .run(10, 3_600_000 * MS);
        let total = (report.deliveries + report.losses) as f64;
        let rate = report.losses as f64 / total;
        assert!((0.1..0.4).contains(&rate), "observed loss rate {rate}");
    }
}

#[cfg(test)]
mod accounting_tests {
    use super::*;
    use selfstab_core::smm::Smm;
    use selfstab_engine::protocol::InitialState;
    use selfstab_graph::{generators, Ids};

    #[test]
    fn per_node_counters_sum_to_totals() {
        let g = generators::grid(4, 4);
        let smm = Smm::paper(Ids::identity(16));
        let report = BeaconSim::new(
            &smm,
            Topology::Static(g),
            InitialState::Random { seed: 6 },
            BeaconConfig::default(),
        )
        .run(5, 3_600_000_000);
        assert!(report.quiesced);
        assert_eq!(
            report.per_node_evaluations.iter().sum::<u64>(),
            report.evaluations
        );
        assert_eq!(
            report.per_node_moves.iter().sum::<u64>(),
            report.moves_per_rule.iter().sum::<u64>()
        );
        // Every node completes at least one round before quiescing.
        assert!(report.per_node_evaluations.iter().all(|&e| e >= 1));
    }

    #[test]
    fn quiescent_start_moves_nothing() {
        // A stabilized state stays silent: per-node moves all zero.
        use selfstab_engine::sync::SyncExecutor;
        let g = generators::cycle(8);
        let smm = Smm::paper(Ids::identity(8));
        let stable = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed: 2 }, 9);
        assert!(stable.stabilized());
        let report = BeaconSim::new(
            &smm,
            Topology::Static(g),
            InitialState::Explicit(stable.final_states),
            BeaconConfig::default(),
        )
        .run(5, 3_600_000_000);
        assert!(report.quiesced);
        assert_eq!(report.per_node_moves.iter().sum::<u64>(), 0);
        assert_eq!(report.last_change, 0);
    }
}

#[cfg(test)]
mod contention_tests {
    use super::*;
    use selfstab_core::smm::Smm;
    use selfstab_engine::protocol::InitialState;
    use selfstab_graph::predicates::is_maximal_matching;
    use selfstab_graph::{generators, Ids};

    #[test]
    fn aligned_beacons_collide_jitter_rescues() {
        let g = generators::complete(6);
        let smm = Smm::paper(Ids::identity(6));
        // Zero jitter + collision model: every beacon period all frames at
        // each receiver overlap — nothing gets through after the first.
        let aligned = BeaconSim::new(
            &smm,
            Topology::Static(g.clone()),
            InitialState::Default,
            BeaconConfig::default().with_collisions(2_000),
        )
        .run(10, 20_000_000);
        assert!(aligned.collisions > 0, "aligned beacons must collide");
        // With jitter, frames spread over the period and mostly survive.
        let jittered = BeaconSim::new(
            &smm,
            Topology::Static(g.clone()),
            InitialState::Default,
            BeaconConfig::default()
                .with_collisions(2_000)
                .with_jitter(0.2),
        )
        .run(10, 60_000_000);
        assert!(jittered.quiesced);
        let m = Smm::matched_edges(&g, &jittered.final_states);
        assert!(is_maximal_matching(&g, &m), "jitter resolves contention");
        let aligned_rate =
            aligned.collisions as f64 / (aligned.collisions + aligned.deliveries) as f64;
        let jittered_rate =
            jittered.collisions as f64 / (jittered.collisions + jittered.deliveries) as f64;
        assert!(
            jittered_rate < aligned_rate,
            "jitter must reduce the collision rate: {jittered_rate} vs {aligned_rate}"
        );
    }

    #[test]
    fn heterogeneous_intervals_still_stabilize() {
        let g = generators::grid(4, 4);
        let smm = Smm::paper(Ids::identity(16));
        let config = BeaconConfig {
            // Half the fleet beacons at 100 ms, half at 170 ms.
            per_node_interval: (0..8u32).map(|v| (2 * v, 170_000)).collect(),
            timeout: 600_000,
            ..BeaconConfig::default()
        }
        .with_jitter(0.05);
        let report = BeaconSim::new(
            &smm,
            Topology::Static(g.clone()),
            InitialState::Random { seed: 5 },
            config,
        )
        .run(10, 600_000_000);
        assert!(report.quiesced);
        let m = Smm::matched_edges(&g, &report.final_states);
        assert!(is_maximal_matching(&g, &m));
    }

    #[test]
    fn interval_lookup() {
        let c = BeaconConfig {
            per_node_interval: vec![(3, 50_000)],
            ..Default::default()
        };
        assert_eq!(c.interval_of(Node(3)), 50_000);
        assert_eq!(c.interval_of(Node(4)), c.beacon_interval);
    }
}

#[cfg(test)]
mod observer_tests {
    use super::*;
    use selfstab_core::smm::Smm;
    use selfstab_engine::obs::MetricsCollector;
    use selfstab_engine::protocol::InitialState;
    use selfstab_engine::sync::SyncExecutor;
    use selfstab_graph::{generators, Ids};

    const MS: Micros = 1_000;

    fn cfg() -> BeaconConfig {
        BeaconConfig {
            seed: 1,
            ..BeaconConfig::default()
        }
    }

    #[test]
    fn observed_run_matches_plain_run_and_counters_reconcile() {
        let g = generators::grid(4, 4);
        let smm = Smm::paper(Ids::identity(16));
        let plain = BeaconSim::new(
            &smm,
            Topology::Static(g.clone()),
            InitialState::Random { seed: 7 },
            cfg(),
        )
        .run(5, 3_600_000 * MS);
        let mut metrics = MetricsCollector::new();
        let observed = BeaconSim::new(
            &smm,
            Topology::Static(g.clone()),
            InitialState::Random { seed: 7 },
            cfg(),
        )
        .run_observed(5, 3_600_000 * MS, &mut metrics);
        assert!(plain.quiesced && observed.quiesced);
        assert_eq!(observed.final_states, plain.final_states);
        assert_eq!(observed.deliveries, plain.deliveries);
        // Per-period counters sum back to the run totals.
        let mut moves = vec![0u64; observed.moves_per_rule.len()];
        let mut deliveries = 0u64;
        let mut changes = 0usize;
        for r in metrics.rounds() {
            let b = r.beacon.as_ref().expect("sim rounds carry beacon counters");
            deliveries += b.deliveries;
            assert_eq!(b.losses, 0);
            assert_eq!(b.collisions, 0);
            assert_eq!(r.duration_micros, cfg().beacon_interval);
            changes += r.privileged;
            for (acc, &k) in moves.iter_mut().zip(&r.moves_per_rule) {
                *acc += k;
            }
        }
        assert_eq!(moves, observed.moves_per_rule);
        assert_eq!(deliveries, observed.deliveries);
        assert_eq!(changes as u64, observed.per_node_moves.iter().sum::<u64>());
        assert_eq!(
            metrics.outcome(),
            Some(&selfstab_engine::sync::Outcome::Stabilized)
        );
    }

    #[test]
    fn observed_zero_jitter_run_still_matches_synchronous_engine() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let g = generators::random_geometric_connected(12, 0.45, &mut rng);
        let n = g.n();
        let smm = Smm::paper(Ids::identity(n));
        let sync = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed: 2 }, n + 1);
        assert!(sync.stabilized());
        let mut metrics = MetricsCollector::new();
        let report = BeaconSim::new(
            &smm,
            Topology::Static(g.clone()),
            InitialState::Random { seed: 2 },
            cfg(),
        )
        .run_observed(5, 60_000 * MS, &mut metrics);
        assert!(report.quiesced);
        assert_eq!(report.final_states, sync.final_states);
        // Every evaluation period moves exactly the nodes the sync engine
        // moved; after stabilization the periods are all-quiet.
        let active: Vec<&selfstab_engine::obs::RoundRecord> = metrics
            .rounds()
            .iter()
            .filter(|r| r.privileged > 0)
            .collect();
        assert_eq!(active.len(), sync.rounds());
        let per_round: Vec<u64> = active
            .iter()
            .map(|r| r.moves_per_rule.iter().sum())
            .collect();
        let sync_total: u64 = sync.moves_per_rule.iter().sum();
        assert_eq!(per_round.iter().sum::<u64>(), sync_total);
    }

    #[test]
    fn lossy_jittered_run_reports_channel_counters() {
        let g = generators::grid(4, 4);
        let smm = Smm::paper(Ids::identity(16));
        let config = BeaconConfig {
            seed: 3,
            ..BeaconConfig::default()
        }
        .with_loss(0.2)
        .with_jitter(0.05);
        let mut metrics = MetricsCollector::new();
        let report = BeaconSim::new(
            &smm,
            Topology::Static(g),
            InitialState::Random { seed: 4 },
            config,
        )
        .run_observed(8, 3_600_000 * MS, &mut metrics);
        assert!(report.quiesced);
        let (mut losses, mut jitter, mut stale) = (0u64, 0u64, 0u64);
        for r in metrics.rounds() {
            let b = r.beacon.as_ref().unwrap();
            losses += b.losses;
            jitter += b.jitter_abs_sum_micros;
            stale += b.stale_views;
        }
        assert_eq!(losses, report.losses);
        assert!(losses > 0, "losses must be observed per period");
        assert!(jitter > 0, "jitter draws must be accumulated");
        assert!(
            stale > 0,
            "with 20% loss some evaluations must use views older than one period"
        );
    }
}
