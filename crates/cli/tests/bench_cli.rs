//! End-to-end exit-code fixtures for `selfstab bench`: the measurement
//! path, self-compare (must exit 0), an injected 2× rounds/sec regression
//! (must exit 1), an improvement (exit 0 but rendered), and the error
//! paths — missing baseline and mismatched matrix (exit 2), matching the
//! `selfstab analyze` gating convention.

use selfstab_bench::observatory::BenchArtifact;
use selfstab_cli::main_with;

fn sv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

fn run(parts: &[&str]) -> (i32, String) {
    let mut buf = Vec::new();
    let code = main_with(&sv(parts), &mut buf);
    (code, String::from_utf8(buf).unwrap())
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("selfstab-bench-cli-{name}-{}", std::process::id()))
        .to_str()
        .unwrap()
        .to_string()
}

/// One small quick-tier artifact per test process, measured once.
fn fixture() -> &'static str {
    use std::sync::OnceLock;
    static PATH: OnceLock<String> = OnceLock::new();
    PATH.get_or_init(|| {
        let path = tmp("base.json");
        let (code, out) = run(&[
            "bench", "--quick", "--n", "24", "--reps", "1", "--pr", "t", "--out", &path,
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("wrote "), "{out}");
        path
    })
}

#[test]
fn self_compare_exits_0() {
    let base = fixture();
    let (code, out) = run(&["bench", "--compare", base, base]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("0 regressed, 0 improved"), "{out}");
    assert!(out.contains("no deltas beyond the noise gate"), "{out}");
}

#[test]
fn injected_regression_exits_1_and_improvement_exits_0() {
    let base = fixture();
    let mut cur = BenchArtifact::read_from(base).unwrap();
    // 2× rounds/sec drop in one cell: past the 10 % bound and the IQR.
    cur.records[0].rounds_per_sec.median /= 2.0;
    let cur_path = tmp("regressed.json");
    cur.write_to(&cur_path).unwrap();
    let (code, out) = run(&["bench", "--compare", base, &cur_path]);
    std::fs::remove_file(&cur_path).ok();
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("1 regressed"), "{out}");
    assert!(out.contains("REGRESSED"), "{out}");
    assert!(out.contains("rounds_per_sec"), "{out}");

    // The same delta in the other direction is an improvement: rendered in
    // the table, but not a failure.
    let (code, out) = run(&[
        "bench",
        "--compare",
        &{
            let p = tmp("improved.json");
            cur.write_to(&p).unwrap();
            p
        },
        base,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("1 improved"), "{out}");

    // A custom relative threshold above the delta silences it.
    let reg_path = tmp("regressed2.json");
    cur.write_to(&reg_path).unwrap();
    let (code, out) = run(&[
        "bench",
        "--compare",
        base,
        &reg_path,
        "--rel-threshold",
        "1.5",
    ]);
    std::fs::remove_file(&reg_path).ok();
    assert_eq!(code, 0, "{out}");
}

#[test]
fn missing_baseline_and_mismatched_matrix_exit_2() {
    let base = fixture();
    let (code, out) = run(&["bench", "--compare", "/nonexistent/old.json", base]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("cannot read"), "{out}");

    // Dropping a cell from the baseline refuses to compare.
    let mut short = BenchArtifact::read_from(base).unwrap();
    short.records.pop();
    let short_path = tmp("short.json");
    short.write_to(&short_path).unwrap();
    let (code, out) = run(&["bench", "--compare", &short_path, base]);
    std::fs::remove_file(&short_path).ok();
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("mismatched matrix"), "{out}");

    // A schema we don't read is refused, not misparsed.
    let wrong_path = tmp("wrong-schema.json");
    std::fs::write(&wrong_path, "{\"schema\": \"selfstab-bench/v0\"}\n").unwrap();
    let (code, out) = run(&["bench", "--compare", &wrong_path, base]);
    std::fs::remove_file(&wrong_path).ok();
    assert_eq!(code, 2, "{out}");
    assert!(
        out.contains("schema mismatch") || out.contains("invalid bench artifact"),
        "{out}"
    );
}

#[test]
fn analyze_renders_bench_artifacts() {
    let base = fixture();
    let (code, out) = run(&["analyze", base]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("bench artifact"), "{out}");
    assert!(out.contains("wire traffic and shard skew"), "{out}");
    assert!(out.contains("bytes/round"), "{out}");
    assert!(out.contains("all cells stabilized"), "{out}");
    // Runtime cells appear with their skew columns.
    assert!(out.contains("runtime@8"), "{out}");
}
