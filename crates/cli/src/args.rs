//! Minimal `--key value` flag parsing.

use std::collections::BTreeMap;

/// Parsed command-line flags.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parse `--key value` pairs and bare `--flag` booleans: a flag followed
    /// by another `--…` token (or by nothing) stores the value `"true"`.
    /// Rejects repeated keys and positional arguments.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = BTreeMap::new();
        let mut it = argv.iter().peekable();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{key}'"));
            };
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().expect("peeked").clone(),
                _ => "true".to_string(),
            };
            if flags.insert(name.to_string(), value).is_some() {
                return Err(format!("flag --{name} given twice"));
            }
        }
        Ok(Args { flags })
    }

    /// Raw string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// String flag with a default.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required string flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// Typed flag with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse '{v}'")),
        }
    }

    /// Whether a bare boolean flag (`--metrics`) was given.
    pub fn bool_flag(&self, key: &str) -> bool {
        self.get(key) == Some("true")
    }

    /// Keys the caller never consumed (for strictness checks, unused here).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.flags.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = Args::parse(&sv(&["--n", "32", "--protocol", "smm"])).unwrap();
        assert_eq!(a.get("n"), Some("32"));
        assert_eq!(a.str_or("protocol", "x"), "smm");
        assert_eq!(a.str_or("missing", "dflt"), "dflt");
        assert_eq!(a.parse_or("n", 0usize).unwrap(), 32);
        assert_eq!(a.parse_or("other", 7usize).unwrap(), 7);
        assert_eq!(a.keys().count(), 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Args::parse(&sv(&["positional"])).is_err());
        assert!(Args::parse(&sv(&["--n", "1", "--n", "2"])).is_err());
        let a = Args::parse(&sv(&["--n", "abc"])).unwrap();
        assert!(a.parse_or("n", 0usize).is_err());
        assert!(a.required("missing").is_err());
        assert_eq!(a.required("n").unwrap(), "abc");
    }

    #[test]
    fn bare_flags_are_booleans() {
        let a = Args::parse(&sv(&["--metrics", "--n", "8"])).unwrap();
        assert!(a.bool_flag("metrics"));
        assert!(!a.bool_flag("n"));
        assert!(!a.bool_flag("absent"));
        assert_eq!(a.parse_or("n", 0usize).unwrap(), 8);
        // Trailing bare flag and a numeric flag that was left dangling.
        let a = Args::parse(&sv(&["--n", "8", "--verbose"])).unwrap();
        assert!(a.bool_flag("verbose"));
        let a = Args::parse(&sv(&["--n"])).unwrap();
        assert!(
            a.parse_or("n", 0usize).is_err(),
            "dangling --n parses as boolean"
        );
    }
}
