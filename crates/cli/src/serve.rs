//! The `serve` and `client` subcommands: the resident overlay-maintenance
//! daemon and a scripted line client for it.
//!
//! `serve` builds a topology, stabilizes the chosen protocol on it, and
//! then runs the service loop against one of two backends: `--script FILE`
//! replays a mutation/query script through the deterministic sim
//! environment (virtual clock, captured replies — the CI backend), while
//! `--socket PATH` listens on a Unix domain socket with the real clock
//! until a client sends `shutdown` or the process gets SIGINT. Both paths
//! run the *same* `selfstab_service::serve` loop body.

use crate::args::Args;
use crate::commands::{build_ids, build_topology, parse_shards};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_core::{Smi, Smm};
use selfstab_engine::obs::JsonlEventLog;
use selfstab_engine::protocol::{InitialState, WireState};
use selfstab_graph::Graph;
use selfstab_json::{Json, ToJson};
use selfstab_service::telemetry::TRACK_FORMAT;
use selfstab_service::{
    serve_with as serve_loop, Backend, OverlayProtocol, OverlayService, ScrapeServer, ServeHooks,
    ServeSummary, ShutdownFlag, SimClock, SimTransport, Snapshot, SnapshotCadence,
    SnapshotScheduler, Telemetry,
};
use std::sync::Arc;

/// `selfstab serve`: run the resident service against a scripted sim
/// session or a Unix-socket listener.
pub fn serve(args: &Args) -> Result<String, String> {
    let protocol = args.required("protocol")?;
    let n: usize = args.parse_or("n", 16)?;
    let seed: u64 = args.parse_or("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed);
    // --resume replaces the generated topology and initial state with a
    // snapshot document; the protocol on the command line must match the
    // one that wrote it.
    let resume = match args.get("resume") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("--resume {path}: {e}"))?;
            let snap = Snapshot::parse(&text).map_err(|e| format!("--resume {path}: {e}"))?;
            if snap.protocol != protocol {
                return Err(format!(
                    "--resume snapshot was written by protocol '{}', not '{protocol}'",
                    snap.protocol
                ));
            }
            Some(snap)
        }
        None => None,
    };
    let g = match &resume {
        Some(snap) => snap.graph(),
        None => build_topology(args.str_or("topology", "path"), n, &mut rng)?,
    };
    let n = g.n();
    let ids = build_ids(args.str_or("ids", "identity"), n, &mut rng)?;
    match protocol {
        "smm" => serve_with(&Smm::paper(ids), g, args, seed, resume),
        "smi" => serve_with(&Smi::new(ids), g, args, seed, resume),
        other => Err(format!(
            "unknown protocol '{other}' (serve supports smm|smi)"
        )),
    }
}

fn serve_with<P>(
    proto: &P,
    g: Graph,
    args: &Args,
    seed: u64,
    resume: Option<Snapshot>,
) -> Result<String, String>
where
    P: OverlayProtocol,
    P::State: WireState + ToJson,
{
    let init = match &resume {
        Some(snap) => InitialState::Explicit(
            snap.decode_states::<P::State>()
                .map_err(|e| format!("--resume: {e}"))?,
        ),
        None => match args.str_or("init", "default") {
            "default" => InitialState::Default,
            "random" => InitialState::Random { seed },
            other => return Err(format!("unknown init '{other}'")),
        },
    };
    let budget: usize = args.parse_or("budget", 0)?;
    let script = args.get("script");
    let socket = args.get("socket");
    let topology = if resume.is_some() {
        "resumed".to_string()
    } else {
        args.str_or("topology", "path").to_string()
    };
    let (n, m) = (g.n(), g.m());

    let backend = match parse_shards(args)? {
        Some((shards, cap)) => Backend::Sharded {
            shards,
            channel_cap: Some(cap),
        },
        None => Backend::Serial,
    };
    let drain = match backend {
        Backend::Serial => "serial".to_string(),
        Backend::Sharded { shards, .. } => format!("sharded({shards})"),
    };
    let mut jsonl = args.get("profile-out").map(|_| JsonlEventLog::new());

    // The registry exists whenever anything consumes it: a scrape listener
    // (--telemetry-addr) or the profile artifact's telemetry track
    // (--profile-out). With neither, the drain path stays unobserved and
    // clock-free.
    let telemetry = (args.get("telemetry-addr").is_some() || jsonl.is_some())
        .then(|| Arc::new(Telemetry::new()));
    let scrape = match args.get("telemetry-addr") {
        Some(addr) => {
            let registry = telemetry.clone().expect("registry exists for scrape");
            let srv = ScrapeServer::bind(addr, registry)
                .map_err(|e| format!("--telemetry-addr {addr}: {e}"))?;
            // To stderr immediately (not the end-of-run report), so a
            // supervisor or CI smoke can start scraping a live daemon.
            eprintln!("telemetry: listening on {}", srv.addr());
            Some(srv)
        }
        None => None,
    };
    let snapshot_every = args.get("snapshot-every");
    let mut scheduler = match snapshot_every {
        Some(spec) => {
            let cadence = SnapshotCadence::parse(spec)?;
            let path = args
                .get("snapshot-out")
                .ok_or("--snapshot-every requires --snapshot-out PATH")?;
            Some(SnapshotScheduler::to_file(cadence, path))
        }
        None => None,
    };

    let mut svc = OverlayService::new(g, proto, init, budget).with_backend(backend);
    if let Some(registry) = &telemetry {
        svc = svc.with_telemetry(registry.clone());
    }
    if let Some(snap) = &resume {
        svc = svc.with_clock_rounds(snap.clock_rounds);
    }
    let mut report = Vec::new();
    if let Some(snap) = &resume {
        report.push(format!(
            "resume: protocol={} n={} clock_rounds={}",
            snap.protocol, snap.n, snap.clock_rounds
        ));
    }

    let summary = match (script, socket) {
        (Some(path), None) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("--script {path}: {e}"))?;
            let clock = SimClock::new();
            let boot = svc.stabilize(&clock, &mut jsonl.as_mut());
            report.push(format!(
                "service: protocol={} topology={topology} n={n} m={m} backend=sim drain={drain}",
                proto.name()
            ));
            report.push(format!(
                "bootstrap: rounds={} moves={}",
                boot.recovery_rounds, boot.moves
            ));
            let mut transport = SimTransport::scripted(text.lines());
            let shutdown = ShutdownFlag::new();
            let summary = serve_loop(
                &mut svc,
                &mut transport,
                &clock,
                &shutdown,
                1_000,
                &mut jsonl.as_mut(),
                ServeHooks {
                    telemetry: telemetry.clone(),
                    snapshots: scheduler.as_mut(),
                },
            );
            report.extend(transport.replies().iter().cloned());
            summary
        }
        (None, Some(path)) => serve_socket(
            &mut svc,
            proto,
            path,
            &mut jsonl,
            &mut report,
            &topology,
            &drain,
            ServeHooks {
                telemetry: telemetry.clone(),
                snapshots: scheduler.as_mut(),
            },
        )?,
        _ => return Err("serve needs exactly one backend: --script FILE or --socket PATH".into()),
    };

    render_outcome(&mut report, &svc, &summary, args);

    if let Some(registry) = &telemetry {
        report.push(format!(
            "telemetry: events={} scrapes={} snapshots={}",
            registry.events_total(),
            registry.scrapes_total(),
            registry.snapshots_total()
        ));
    }
    if let (Some(sched), Some(spec)) = (&scheduler, snapshot_every) {
        report.push(format!(
            "snapshots: written={} every={spec}",
            sched.written()
        ));
    }
    drop(scrape); // stop the scrape listener before the final report

    if let Some(path) = args.get("snapshot-out") {
        let doc = selfstab_service::snapshot::write_snapshot(
            proto.name(),
            svc.graph(),
            svc.states(),
            svc.clock_rounds(),
        );
        std::fs::write(path, doc).map_err(|e| format!("--snapshot-out {path}: {e}"))?;
        report.push(format!("snapshot: {path}"));
    }
    if let (Some(path), Some(log)) = (args.get("profile-out"), jsonl.as_mut()) {
        let mut meta = vec![
            ("mode".to_string(), "service".to_json()),
            ("protocol".to_string(), proto.name().to_json()),
            ("topology".to_string(), topology.to_json()),
            ("n".to_string(), n.to_json()),
            ("m".to_string(), m.to_json()),
            ("seed".to_string(), seed.to_json()),
            (
                "rules".to_string(),
                Json::Array(proto.rule_names().iter().map(|r| r.to_json()).collect()),
            ),
            (
                "service_events".to_string(),
                Json::Array(svc.records().iter().map(|r| r.to_json()).collect()),
            ),
        ];
        if let Some(registry) = &telemetry {
            // The rolling telemetry track rides inside the same artifact:
            // one `service-telemetry` event line per drained event, plus
            // provenance fields in the meta line for `analyze --window`.
            let (rows, dropped) = registry.take_track();
            for row in rows {
                if let Json::Object(fields) = row {
                    log.push_event("service-telemetry", fields);
                }
            }
            meta.push(("telemetry_format".to_string(), TRACK_FORMAT.to_json()));
            meta.push(("telemetry_dropped".to_string(), dropped.to_json()));
            meta.push((
                "telemetry_clients".to_string(),
                Json::Array(
                    registry
                        .client_requests()
                        .into_iter()
                        .map(|(client, requests)| {
                            Json::obj([
                                ("client", client.to_json()),
                                ("requests", requests.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        log.push_meta(meta);
        log.write_to(path)
            .map_err(|e| format!("--profile-out {path}: {e}"))?;
        report.push(format!("profile: {path}"));
    }
    Ok(report.join("\n"))
}

#[cfg(unix)]
#[allow(clippy::too_many_arguments)]
fn serve_socket<P>(
    svc: &mut OverlayService<'_, P>,
    proto: &P,
    path: &str,
    jsonl: &mut Option<JsonlEventLog>,
    report: &mut Vec<String>,
    topology: &str,
    drain: &str,
    hooks: ServeHooks<'_>,
) -> Result<ServeSummary, String>
where
    P: OverlayProtocol,
    P::State: WireState + ToJson,
{
    use selfstab_service::{RealClock, UdsTransport};
    selfstab_service::signal::install_sigint();
    let clock = RealClock::new();
    let (n, m) = (svc.graph().n(), svc.graph().m());
    let boot = svc.stabilize(&clock, &mut jsonl.as_mut());
    let (boot_rounds, boot_moves) = (boot.recovery_rounds, boot.moves);
    report.push(format!(
        "service: protocol={} topology={topology} n={n} m={m} backend=uds socket={path} drain={drain}",
        proto.name(),
    ));
    report.push(format!(
        "bootstrap: rounds={boot_rounds} moves={boot_moves}"
    ));
    let mut transport = UdsTransport::bind(std::path::Path::new(path))
        .map_err(|e| format!("--socket {path}: {e}"))?;
    let shutdown = ShutdownFlag::new();
    let summary = serve_loop(
        svc,
        &mut transport,
        &clock,
        &shutdown,
        20_000,
        &mut jsonl.as_mut(),
        hooks,
    );
    // shutdown() severs queued and live clients, joins the acceptor and
    // every reader, and removes the socket file.
    transport.shutdown();
    Ok(summary)
}

#[cfg(not(unix))]
#[allow(clippy::too_many_arguments)]
fn serve_socket<P>(
    _svc: &mut OverlayService<'_, P>,
    _proto: &P,
    _path: &str,
    _jsonl: &mut Option<JsonlEventLog>,
    _report: &mut Vec<String>,
    _topology: &str,
    _drain: &str,
    _hooks: ServeHooks<'_>,
) -> Result<ServeSummary, String>
where
    P: OverlayProtocol,
    P::State: WireState + ToJson,
{
    Err("--socket requires a Unix platform (use --script)".into())
}

fn render_outcome<P: OverlayProtocol>(
    report: &mut Vec<String>,
    svc: &OverlayService<'_, P>,
    summary: &ServeSummary,
    args: &Args,
) {
    report.push(format!(
        "session: outcome={} requests={} mutations={} queries={} errors={} drained={}",
        summary.outcome.name(),
        summary.requests,
        summary.mutations,
        summary.queries,
        summary.errors,
        summary.drained
    ));
    let legitimate = svc.proto().is_legitimate(svc.graph(), svc.states());
    report.push(format!(
        "state: clock_rounds={} events={} converged={} legitimate={}",
        svc.clock_rounds(),
        svc.events_applied(),
        svc.is_converged(),
        legitimate
    ));
    let h = svc.recovery_hist();
    report.push(format!(
        "latency: events={} p50={} p99={} max={}",
        h.total(),
        h.quantile(0.5).unwrap_or(0),
        h.quantile(0.99).unwrap_or(0),
        h.max_value().unwrap_or(0)
    ));
    if args.bool_flag("metrics") {
        report.push("per-event recovery:".to_string());
        report.push(format!(
            "  {:>4}  {:<10}  {:>6}  {:>9}  {:>8}  {:>6}  {:<5}  detail",
            "seq", "kind", "round", "perturbed", "recovery", "moves", "conv"
        ));
        for r in svc.records() {
            report.push(format!(
                "  {:>4}  {:<10}  {:>6}  {:>9}  {:>8}  {:>6}  {:<5}  {}",
                r.seq,
                r.kind,
                r.round,
                r.perturbed,
                r.recovery_rounds,
                r.moves,
                r.converged,
                r.detail
            ));
        }
    }
}

/// `selfstab client`: a scripted session against a running `--socket`
/// daemon. Sends each line of `--script FILE` (or the single `--send`
/// line) and prints one reply line per request. With `--scrape HOST:PORT`
/// instead, fetches one Prometheus exposition from a daemon's
/// `--telemetry-addr` listener and prints the body.
pub fn client(args: &Args) -> Result<String, String> {
    if let Some(addr) = args.get("scrape") {
        return selfstab_service::scrape_once(addr)
            .map(|body| body.trim_end().to_string())
            .map_err(|e| format!("--scrape {addr}: {e}"));
    }
    #[cfg(unix)]
    {
        let socket = args.required("socket")?;
        let lines: Vec<String> = match (args.get("script"), args.get("send")) {
            (Some(path), None) => std::fs::read_to_string(path)
                .map_err(|e| format!("--script {path}: {e}"))?
                .lines()
                .map(str::to_string)
                .collect(),
            (None, Some(line)) => vec![line.to_string()],
            _ => return Err("client needs exactly one of --script FILE or --send LINE".into()),
        };
        let mut replies = Vec::new();
        selfstab_service::uds_client_session(std::path::Path::new(socket), &lines, |r| {
            replies.push(r.to_string())
        })
        .map_err(|e| format!("client session on {socket}: {e}"))?;
        Ok(replies.join("\n"))
    }
    #[cfg(not(unix))]
    {
        let _ = args;
        Err("client requires a Unix platform".into())
    }
}
