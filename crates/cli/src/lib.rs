//! Command-line front end for the `selfstab` protocols.
//!
//! ```text
//! selfstab run    --protocol smm --topology grid --n 64 [--ids random --seed 7 --init random --format text|json|dot]
//! selfstab sim    --protocol smi --topology unit-disk --n 32 [--jitter 0.05 --loss 0.1 --mobility 0.02 --seconds 30]
//! selfstab verify --protocol smm --max-n 4
//! ```
//!
//! The parsing layer is deliberately tiny (flags are `--key value` pairs);
//! all heavy lifting happens in the library crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod args;
pub mod bench;
pub mod commands;
pub mod serve;

pub use args::Args;

/// Entry point shared by the binary and the tests. Returns the process exit
/// code and writes the report to `out`.
pub fn main_with(argv: &[String], out: &mut dyn std::io::Write) -> i32 {
    let mut it = argv.iter();
    let Some(cmd) = it.next() else {
        let _ = writeln!(out, "{}", commands::USAGE);
        return 2;
    };
    let mut rest: Vec<String> = it.cloned().collect();
    // `bench` handles its own argv: `--compare <old> <new>` carries a
    // trailing positional the shared parser rejects.
    if cmd == "bench" {
        return bench::bench_main(&rest, out);
    }
    // `analyze` takes its artifact as a leading positional argument
    // (`selfstab analyze run.jsonl`); every other flag stays `--key value`.
    let mut artifact: Option<String> = None;
    if cmd == "analyze" && rest.first().is_some_and(|a| !a.starts_with("--")) {
        artifact = Some(rest.remove(0));
    }
    let args = match Args::parse(&rest) {
        Ok(a) => a,
        Err(e) => {
            let _ = writeln!(out, "error: {e}\n\n{}", commands::USAGE);
            return 2;
        }
    };
    if cmd == "analyze" {
        return match analyze::analyze(artifact.as_deref(), &args) {
            Ok((report, ok)) => {
                let _ = writeln!(out, "{report}");
                // Bound violations exit 1 so a recorded artifact can gate CI.
                i32::from(!ok)
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}\n\n{}", commands::USAGE);
                2
            }
        };
    }
    let result = match cmd.as_str() {
        "run" => commands::run(&args),
        "sim" => commands::sim(&args),
        "verify" => commands::verify(&args),
        "topology" => commands::topology(&args),
        "serve" => serve::serve(&args),
        "client" => serve::client(&args),
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{}", commands::USAGE);
            return 0;
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(report) => {
            let _ = writeln!(out, "{report}");
            0
        }
        Err(e) => {
            let _ = writeln!(out, "error: {e}\n\n{}", commands::USAGE);
            2
        }
    }
}
