fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    std::process::exit(selfstab_cli::main_with(&argv, &mut stdout));
}
