//! The offline `analyze` subcommand.
//!
//! Reads a profiled JSONL artifact (recorded by `run --profile`) and
//! prints, without re-running anything: the critical-path breakdown per
//! phase, a shard-skew table naming the straggler lane, the backpressure
//! hot channels, the chaos recovery timeline, and the paper's bound
//! checks — rounds ≤ n+1 for SMM (Theorem 1), monotone |M| (Lemmas 9–10),
//! and the move total against the Manne et al. O(m) yardstick. Bound
//! violations make the command exit non-zero, so a recorded artifact can
//! gate CI.

use crate::args::Args;
use selfstab_analysis::{Histogram, SkewAccumulator};
use selfstab_bench::observatory::BenchArtifact;
use selfstab_engine::obs::PHASES;
use selfstab_json::Json;

/// Everything `analyze` extracts from one `round_end` line.
struct RoundData {
    round: u64,
    moves: u64,
    /// Post-round global state, kept verbatim for the |M| check.
    states: Option<Vec<Json>>,
    profile: Option<Json>,
    runtime: Option<Json>,
}

/// Parsed artifact: the meta header, the rounds, and the finish line.
#[derive(Default)]
struct Artifact {
    protocol: Option<String>,
    topology: Option<String>,
    n: Option<u64>,
    m: Option<u64>,
    shards: Option<u64>,
    max_rounds: Option<u64>,
    faults: bool,
    init_states: Option<Vec<Json>>,
    rounds: Vec<RoundData>,
    outcome: Option<String>,
    stabilized: bool,
}

fn parse_artifact(text: &str) -> Result<Artifact, String> {
    let mut art = Artifact::default();
    let mut saw_finish = false;
    for (i, line) in text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
    {
        let event = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        match event.get("event").and_then(Json::as_str) {
            Some("meta") => {
                art.protocol = event
                    .get("protocol")
                    .and_then(Json::as_str)
                    .map(str::to_string);
                art.topology = event
                    .get("topology")
                    .and_then(Json::as_str)
                    .map(str::to_string);
                art.n = event.get("n").and_then(Json::as_u64);
                art.m = event.get("m").and_then(Json::as_u64);
                art.shards = event.get("shards").and_then(Json::as_u64);
                art.max_rounds = event.get("max_rounds").and_then(Json::as_u64);
                art.faults = event.get("faults").and_then(Json::as_bool).unwrap_or(false);
            }
            Some("init") => {
                art.init_states = event
                    .get("states")
                    .and_then(Json::as_array)
                    .map(<[Json]>::to_vec);
            }
            Some("round_end") => {
                art.rounds.push(RoundData {
                    round: event.get("round").and_then(Json::as_u64).unwrap_or(0),
                    moves: event
                        .get("moves_per_rule")
                        .and_then(Json::as_array)
                        .map(|a| a.iter().filter_map(Json::as_u64).sum())
                        .unwrap_or(0),
                    states: event
                        .get("states")
                        .and_then(Json::as_array)
                        .map(<[Json]>::to_vec),
                    profile: event.get("profile").cloned(),
                    runtime: event.get("runtime").cloned(),
                });
            }
            Some("finish") => {
                saw_finish = true;
                art.outcome = event
                    .get("outcome")
                    .and_then(Json::as_str)
                    .map(str::to_string);
                art.stabilized = event
                    .get("stabilized")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
            }
            Some("move") => {}
            _ => return Err(format!("line {}: unknown event type", i + 1)),
        }
    }
    if !saw_finish {
        return Err("artifact has no finish event (truncated recording?)".into());
    }
    Ok(art)
}

/// Matched pairs |M| of an SMM state snapshot (nullable pointer per node):
/// pairs `i < j` with `s[i] == j` and `s[j] == i`. `None` when any entry is
/// neither null nor an integer (not an SMM pointer state).
fn matched_pairs(states: &[Json]) -> Option<u64> {
    let ptrs: Vec<Option<u64>> = states
        .iter()
        .map(|s| match s {
            Json::Null => Some(None),
            other => other.as_u64().map(Some),
        })
        .collect::<Option<_>>()?;
    let mut count = 0u64;
    for (i, p) in ptrs.iter().enumerate() {
        if let Some(j) = p {
            let j = *j as usize;
            if j > i && ptrs.get(j).copied().flatten() == Some(i as u64) {
                count += 1;
            }
        }
    }
    Some(count)
}

/// Per-round fault events, read back from the artifact's runtime counters
/// (sharded chaos) or its `rehydrate` spans (serial `--crash-at`).
fn fault_events(r: &RoundData) -> Vec<String> {
    let mut events = Vec::new();
    if let Some(rt) = &r.runtime {
        for key in [
            "frames_dropped",
            "frames_duped",
            "frames_delayed",
            "frames_corrupted",
            "restarts",
            "byz_rewrites",
            "asym_links_down",
        ] {
            if let Some(v) = rt.get(key).and_then(Json::as_u64) {
                if v > 0 {
                    events.push(format!("{key}={v}"));
                }
            }
        }
    }
    if let Some(p) = &r.profile {
        let rehydrated = p
            .get("shards")
            .and_then(Json::as_array)
            .is_some_and(|shards| {
                shards.iter().any(|lane| {
                    lane.get("spans")
                        .and_then(|s| s.get("rehydrate"))
                        .and_then(|s| s.get("count"))
                        .and_then(Json::as_u64)
                        .is_some_and(|c| c > 0)
                })
            });
        if rehydrated && r.runtime.is_none() {
            events.push("crash-at rehydration".to_string());
        }
    }
    events
}

/// A resident-service artifact (`serve --profile-out`) is a JSONL stream
/// whose meta line carries `mode: "service"` — it has per-*event* records
/// and a telemetry track instead of per-round states, and no `finish`
/// line (a daemon has no scripted end). Detect it before the batch-run
/// parser, whose truncation check would otherwise reject it.
fn sniff_service(text: &str) -> bool {
    text.lines()
        .find(|l| !l.trim().is_empty())
        .is_some_and(|l| {
            Json::parse(l).ok().is_some_and(|j| {
                j.get("event").and_then(Json::as_str) == Some("meta")
                    && j.get("mode").and_then(Json::as_str) == Some("service")
            })
        })
}

/// One row of the service analysis: an event record, drawn from the
/// telemetry track when present (has drain latency and queue depth) or
/// the meta `service_events` spine otherwise.
struct ServiceRow {
    seq: u64,
    kind: String,
    recovery_rounds: u64,
    moves: u64,
    perturbed: u64,
    drain_micros: Option<u64>,
    queue_depth: Option<u64>,
    converged: bool,
}

impl ServiceRow {
    fn parse(j: &Json) -> ServiceRow {
        let get = |k: &str| j.get(k).and_then(Json::as_u64);
        ServiceRow {
            seq: get("seq").unwrap_or(0),
            kind: j
                .get("kind")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            recovery_rounds: get("recovery_rounds").unwrap_or(0),
            moves: get("moves").unwrap_or(0),
            perturbed: get("perturbed").unwrap_or(0),
            drain_micros: get("drain_micros"),
            queue_depth: get("queue_depth"),
            converged: j.get("converged").and_then(Json::as_bool).unwrap_or(false),
        }
    }
}

/// `selfstab analyze` on a `serve --profile-out` artifact: event-stream
/// summary, rolling `--window N` recovery/drain tables (per-window
/// [`Histogram`]s folded into a cumulative one via `merge`), per-client
/// fairness, and the per-event Theorem 1/2 recovery bound as the CI gate.
fn analyze_service(path: &str, text: &str, args: &Args) -> Result<(String, bool), String> {
    let window: usize = match args.get("window") {
        Some(w) => {
            let v: usize = w
                .parse()
                .map_err(|_| format!("--window '{w}' is not an integer"))?;
            if v == 0 {
                return Err("--window must be a positive number of events".into());
            }
            v
        }
        None => 0,
    };

    let mut protocol = None;
    let mut topology = None;
    let (mut n, mut m) = (None, None);
    let mut spine: Vec<Json> = Vec::new();
    let mut track: Vec<ServiceRow> = Vec::new();
    let mut dropped = 0u64;
    let mut track_format = None;
    let mut clients: Vec<(u64, u64)> = Vec::new();
    for (i, line) in text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
    {
        let event = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        match event.get("event").and_then(Json::as_str) {
            Some("meta") => {
                protocol = event
                    .get("protocol")
                    .and_then(Json::as_str)
                    .map(str::to_string);
                topology = event
                    .get("topology")
                    .and_then(Json::as_str)
                    .map(str::to_string);
                n = event.get("n").and_then(Json::as_u64);
                m = event.get("m").and_then(Json::as_u64);
                spine = event
                    .get("service_events")
                    .and_then(Json::as_array)
                    .map(<[Json]>::to_vec)
                    .unwrap_or_default();
                dropped = event
                    .get("telemetry_dropped")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                track_format = event
                    .get("telemetry_format")
                    .and_then(Json::as_str)
                    .map(str::to_string);
                clients = event
                    .get("telemetry_clients")
                    .and_then(Json::as_array)
                    .map(|a| {
                        a.iter()
                            .filter_map(|c| {
                                Some((
                                    c.get("client").and_then(Json::as_u64)?,
                                    c.get("requests").and_then(Json::as_u64)?,
                                ))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
            }
            Some("service-telemetry") => track.push(ServiceRow::parse(&event)),
            // Observer round/move lines may interleave; they carry no
            // per-event semantics here.
            _ => {}
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "service artifact {path}\nprotocol {} on {}",
        protocol.as_deref().unwrap_or("(unknown)"),
        topology.as_deref().unwrap_or("(unknown topology)"),
    ));
    if let (Some(n), Some(m)) = (n, m) {
        out.push_str(&format!(" (n={n}, m={m})"));
    }
    if let Some(fmt) = &track_format {
        out.push_str(&format!("\ntelemetry track: {fmt}, {} row(s)", track.len()));
        if dropped > 0 {
            out.push_str(&format!(" ({dropped} oldest dropped at the ring cap)"));
        }
    }
    out.push('\n');

    // Rows: the telemetry track when recorded, else the event spine
    // (skipping the seq-0 bootstrap, which is not an ingested event).
    let rows: Vec<ServiceRow> = if track.is_empty() {
        spine
            .iter()
            .map(ServiceRow::parse)
            .filter(|r| r.seq > 0)
            .collect()
    } else {
        track
    };
    if rows.is_empty() {
        out.push_str("no service events recorded\n");
        return Ok((out, true));
    }

    let total_moves: u64 = rows.iter().map(|r| r.moves).sum();
    let settled = rows.iter().filter(|r| r.converged).count();
    let mut kinds: Vec<(String, usize)> = Vec::new();
    for r in &rows {
        match kinds.iter_mut().find(|(k, _)| *k == r.kind) {
            Some((_, c)) => *c += 1,
            None => kinds.push((r.kind.clone(), 1)),
        }
    }
    let kinds = kinds
        .iter()
        .map(|(k, c)| format!("{k}×{c}"))
        .collect::<Vec<_>>()
        .join(" ");
    out.push_str(&format!(
        "events: {} ({} converged at event end; {kinds}), total moves {total_moves}\n",
        rows.len(),
        settled,
    ));

    // Rolling windows: chunk the event stream, histogram each chunk, and
    // fold the chunks into a cumulative histogram with `merge` — the
    // cumulative line must therefore agree with a whole-run histogram.
    let chunk = if window == 0 { rows.len() } else { window };
    out.push_str(&format!(
        "\nrolling recovery latency (window {chunk} event(s))\n"
    ));
    out.push_str("| window | events | p50 | p99 | max | moves | mean drain µs | max queue |\n");
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    let mut cumulative = Histogram::new();
    for (w, rows) in rows.chunks(chunk).enumerate() {
        let hist = Histogram::of(rows.iter().map(|r| r.recovery_rounds as usize));
        let moves: u64 = rows.iter().map(|r| r.moves).sum();
        let drains: Vec<u64> = rows.iter().filter_map(|r| r.drain_micros).collect();
        let drain = if drains.is_empty() {
            "—".to_string()
        } else {
            format!(
                "{:.1}",
                drains.iter().sum::<u64>() as f64 / drains.len() as f64
            )
        };
        let queue = rows
            .iter()
            .filter_map(|r| r.queue_depth)
            .max()
            .map_or_else(|| "—".to_string(), |q| q.to_string());
        out.push_str(&format!(
            "| {w} | {} | {} | {} | {} | {moves} | {drain} | {queue} |\n",
            hist.total(),
            hist.quantile(0.5).unwrap_or(0),
            hist.quantile(0.99).unwrap_or(0),
            hist.max_value().unwrap_or(0),
        ));
        cumulative.merge(&hist);
    }
    out.push_str(&format!(
        "cumulative: {} event(s), p50 {} p99 {} max {}\n",
        cumulative.total(),
        cumulative.quantile(0.5).unwrap_or(0),
        cumulative.quantile(0.99).unwrap_or(0),
        cumulative.max_value().unwrap_or(0),
    ));

    // Per-client fairness: how the ingest load spread over connections.
    if !clients.is_empty() {
        let total: u64 = clients.iter().map(|(_, r)| r).sum();
        out.push_str("\nclient fairness\n| client | requests | share |\n|---|---|---|\n");
        for (client, requests) in &clients {
            let share = if total > 0 {
                100.0 * *requests as f64 / total as f64
            } else {
                0.0
            };
            out.push_str(&format!("| {client} | {requests} | {share:.1}% |\n"));
        }
    }

    // The gate: every per-event recovery must sit within the Theorem 1/2
    // budget n+2 (bootstrap and settle always get the full budget, so a
    // larger value can only come from a corrupted or inconsistent
    // artifact).
    let mut violations = Vec::new();
    out.push_str("\nbound checks\n");
    if let Some(n) = n {
        let bound = n + 2;
        let worst = rows.iter().map(|r| r.recovery_rounds).max().unwrap_or(0);
        if worst <= bound {
            out.push_str(&format!(
                "  PASS per-event recovery max {worst} ≤ n+2 = {bound} (Theorems 1–2)\n"
            ));
        } else {
            violations.push(format!(
                "event recovery {worst} rounds exceeds the n+2 = {bound} budget"
            ));
        }
        if let Some(r) = rows.iter().find(|r| r.perturbed > n) {
            violations.push(format!(
                "event seq {} perturbed {} nodes on an n = {n} graph",
                r.seq, r.perturbed
            ));
        }
    } else {
        out.push_str("  SKIP recovery bound (meta lacks n)\n");
    }
    for v in &violations {
        out.push_str(&format!("  FAIL {v}\n"));
    }
    if !violations.is_empty() {
        out.push_str(&format!(
            "\n{} bound violation(s) — artifact is inconsistent with the paper\n",
            violations.len(),
        ));
    }
    Ok((out, violations.is_empty()))
}

/// Render a `selfstab bench` observatory artifact: header, stabilization
/// check, and the wire/shard-skew table — per-lane totals re-fed through
/// [`SkewAccumulator`], the same aggregation the JSONL path uses live.
fn analyze_bench(path: &str, artifact: &BenchArtifact) -> (String, bool) {
    let mut out = String::new();
    out.push_str(&format!(
        "bench artifact {path} (schema {}, pr {}, tier {})\n",
        artifact.schema, artifact.pr, artifact.tier
    ));
    out.push_str(&format!(
        "machine: {}/{}, {} cpu(s), crate {}\n",
        artifact.machine.os,
        artifact.machine.arch,
        artifact.machine.cpus,
        artifact.machine.crate_version
    ));
    let stabilized = artifact.records.iter().filter(|r| r.stabilized).count();
    out.push_str(&format!(
        "{} records ({stabilized} stabilized), sizes n={}\n",
        artifact.records.len(),
        artifact
            .records
            .first()
            .map_or_else(|| "?".into(), |r| r.n.to_string()),
    ));

    out.push_str("\nwire traffic and shard skew (sharded-runtime cells)\n");
    let wired: Vec<_> = artifact
        .records
        .iter()
        .filter_map(|r| r.wire.as_ref().map(|w| (r, w)))
        .collect();
    if wired.is_empty() {
        out.push_str("  no sharded-runtime cells in artifact\n");
    } else {
        out.push_str(
            "| cell | rounds | bytes/round | suppressed | mean skew | straggler | peak inbox |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|\n");
        for (r, w) in &wired {
            // Re-feed the per-lane totals the artifact carries through the
            // skew accumulator (one fold over lane totals).
            let samples: Vec<(usize, u64, u64)> = w
                .lane_micros
                .iter()
                .zip(&w.lane_inbox)
                .enumerate()
                .map(|(lane, (&us, &depth))| (lane, us, depth))
                .collect();
            let mut acc = SkewAccumulator::new();
            acc.record_round(1, &samples);
            let straggler = acc
                .straggler()
                .map_or_else(|| "—".into(), |s| format!("lane {s}"));
            let peak = acc.hot_channels().first().map_or_else(
                || "0".into(),
                |&(lane, depth, _)| format!("{depth} (lane {lane})"),
            );
            out.push_str(&format!(
                "| {} | {} | {:.1} | {} | {:.2} | {} | {} |\n",
                r.cell_id(),
                r.rounds,
                w.bytes_per_round,
                w.frames_suppressed,
                acc.mean_skew(),
                straggler,
                peak,
            ));
        }
    }

    let mut ok = true;
    let unstable: Vec<String> = artifact
        .records
        .iter()
        .filter(|r| !r.stabilized)
        .map(|r| r.cell_id())
        .collect();
    if unstable.is_empty() {
        out.push_str("\nall cells stabilized within their round budget\n");
    } else {
        ok = false;
        out.push_str(&format!(
            "\nFAIL {} cell(s) hit the round limit: {}\n",
            unstable.len(),
            unstable.join(", "),
        ));
    }
    (out, ok)
}

/// `selfstab analyze <artifact.jsonl>`: returns the report and whether all
/// bound checks passed (false exits the process non-zero).
pub fn analyze(positional: Option<&str>, args: &Args) -> Result<(String, bool), String> {
    let path = match positional.or_else(|| args.get("input")) {
        Some(p) => p.to_string(),
        None => return Err("analyze needs an artifact path: selfstab analyze <run.jsonl>".into()),
    };
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    // A `BENCH_<pr>.json` observatory artifact is a single JSON object, not
    // a JSONL event stream — render it with the bench renderer instead of
    // erroring on non-profile input.
    if BenchArtifact::sniff(&text) {
        let artifact = BenchArtifact::parse(&text).map_err(|e| format!("'{path}': {e}"))?;
        return Ok(analyze_bench(&path, &artifact));
    }
    // Resident-service artifacts have no finish line; route them to the
    // event-stream analyzer before the batch parser's truncation check.
    if sniff_service(&text) {
        return analyze_service(&path, &text, args).map_err(|e| format!("'{path}': {e}"));
    }
    let art = parse_artifact(&text).map_err(|e| format!("'{path}': {e}"))?;
    let mut out = String::new();
    let mut violations: Vec<String> = Vec::new();

    // ---- header -----------------------------------------------------
    out.push_str(&format!(
        "analysis of {path}\nprotocol {} on {}",
        art.protocol.as_deref().unwrap_or("(unknown)"),
        art.topology.as_deref().unwrap_or("(unknown topology)"),
    ));
    if let (Some(n), Some(m)) = (art.n, art.m) {
        out.push_str(&format!(" (n={n}, m={m})"));
    }
    if let Some(k) = art.shards {
        out.push_str(&format!(", {k} shard(s)"));
    }
    let rounds = art.rounds.len();
    out.push_str(&format!(
        "\noutcome: {} after {rounds} recorded round(s); faults injected: {}\n",
        art.outcome.as_deref().unwrap_or("(unknown)"),
        if art.faults { "yes" } else { "no" },
    ));

    // ---- critical path ----------------------------------------------
    // Per round the slowest lane *is* the barrier-synchronized critical
    // path; summing its per-phase spans says where the run's wall clock
    // actually went.
    let mut crit_micros = [0u64; PHASES.len()];
    let mut crit_counts = [0u64; PHASES.len()];
    let mut crit_total = 0u64;
    let mut skew = SkewAccumulator::new();
    let mut profiled_rounds = 0usize;
    for r in &art.rounds {
        let Some(p) = &r.profile else { continue };
        let Some(lanes) = p.get("shards").and_then(Json::as_array) else {
            continue;
        };
        profiled_rounds += 1;
        let samples: Vec<(usize, u64, u64)> = lanes
            .iter()
            .map(|lane| {
                (
                    lane.get("shard").and_then(Json::as_u64).unwrap_or(0) as usize,
                    lane.get("round_micros").and_then(Json::as_u64).unwrap_or(0),
                    lane.get("inbox_max_depth")
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                )
            })
            .collect();
        skew.record_round(r.round as usize, &samples);
        let straggler = p.get("straggler").and_then(Json::as_u64).unwrap_or(0);
        if let Some(lane) = lanes
            .iter()
            .find(|l| l.get("shard").and_then(Json::as_u64) == Some(straggler))
        {
            crit_total += lane.get("round_micros").and_then(Json::as_u64).unwrap_or(0);
            if let Some(spans) = lane.get("spans") {
                for (i, phase) in PHASES.iter().enumerate() {
                    if let Some(s) = spans.get(phase.label()) {
                        crit_micros[i] += s.get("micros").and_then(Json::as_u64).unwrap_or(0);
                        crit_counts[i] += s.get("count").and_then(Json::as_u64).unwrap_or(0);
                    }
                }
            }
        }
    }
    out.push_str("\ncritical path (straggler lane, per phase)\n");
    if profiled_rounds == 0 {
        out.push_str("  no per-lane profile in artifact (record with run --profile)\n");
    } else {
        let span_sum: u64 = crit_micros.iter().sum();
        out.push_str("| phase | µs | share | samples |\n|---|---|---|---|\n");
        for (i, phase) in PHASES.iter().enumerate() {
            if crit_micros[i] == 0 && crit_counts[i] == 0 {
                continue;
            }
            let share = if span_sum > 0 {
                100.0 * crit_micros[i] as f64 / span_sum as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "| {} | {} | {share:.1}% | {} |\n",
                phase.label(),
                crit_micros[i],
                crit_counts[i],
            ));
        }
        out.push_str(&format!(
            "straggler-lane time {crit_total} µs over {profiled_rounds} profiled round(s)\n"
        ));
    }

    // ---- shard skew --------------------------------------------------
    out.push_str("\nshard skew\n");
    if skew.lanes().len() < 2 {
        out.push_str("  single lane — no skew to report\n");
    } else {
        out.push_str("| lane | total µs | straggler rounds | max inbox depth | peak round |\n");
        out.push_str("|---|---|---|---|---|\n");
        for (i, lane) in skew.lanes().iter().enumerate() {
            out.push_str(&format!(
                "| {i} | {} | {} | {} | {} |\n",
                lane.total_micros, lane.straggler_rounds, lane.max_inbox_depth, lane.peak_round,
            ));
        }
        if let Some(s) = skew.straggler() {
            out.push_str(&format!(
                "straggler shard: {s} (slowest in {}/{} rounds); mean skew {:.2}\n",
                skew.lanes()[s].straggler_rounds,
                skew.rounds(),
                skew.mean_skew(),
            ));
        }
    }

    // ---- backpressure ------------------------------------------------
    out.push_str("\nbackpressure hot channels\n");
    let hot = skew.hot_channels();
    if hot.is_empty() {
        out.push_str("  no inbox ever held a queued frame at exchange end\n");
    } else {
        for (lane, depth, round) in hot {
            out.push_str(&format!(
                "  lane {lane}: inbox peaked at {depth} (round {round})\n"
            ));
        }
    }

    // ---- chaos recovery timeline ------------------------------------
    out.push_str("\nchaos recovery timeline\n");
    let mut last_fault_round: Option<u64> = None;
    let mut any_fault = false;
    for r in &art.rounds {
        let events = fault_events(r);
        if !events.is_empty() {
            any_fault = true;
            last_fault_round = Some(r.round);
            out.push_str(&format!("  round {}: {}\n", r.round, events.join(", ")));
        }
    }
    if !any_fault {
        out.push_str("  no fault events recorded\n");
    } else if let (Some(last), Some(final_round)) =
        (last_fault_round, art.rounds.last().map(|r| r.round))
    {
        if art.stabilized {
            out.push_str(&format!(
                "  re-stabilized {} round(s) after the last fault event\n",
                final_round.saturating_sub(last),
            ));
        }
    }

    // ---- bound checks ------------------------------------------------
    out.push_str("\nbound checks\n");
    let is_smm = art.protocol.as_deref() == Some("SMM");
    if is_smm && !art.faults {
        // Theorem 1: SMM stabilizes within n+1 rounds from any state.
        if let Some(n) = art.n {
            if art.stabilized {
                let bound = n + 1;
                if rounds as u64 <= bound {
                    out.push_str(&format!(
                        "  PASS rounds {rounds} ≤ n+1 = {bound} (Theorem 1)\n"
                    ));
                } else {
                    violations.push(format!(
                        "rounds {rounds} exceed the Theorem 1 bound n+1 = {bound}"
                    ));
                }
            } else {
                violations.push(format!(
                    "fault-free SMM run did not stabilize ({}) within the budget",
                    art.outcome.as_deref().unwrap_or("unknown outcome"),
                ));
            }
        }
        // Lemmas 9–10: a matched pair never dissolves, so |M| is monotone.
        let snapshots: Vec<&Vec<Json>> = art
            .init_states
            .iter()
            .chain(art.rounds.iter().filter_map(|r| r.states.as_ref()))
            .collect();
        let sizes: Option<Vec<u64>> = snapshots.iter().map(|s| matched_pairs(s)).collect();
        match sizes {
            Some(sizes) if sizes.len() > 1 => {
                match sizes.windows(2).position(|w| w[1] < w[0]) {
                    None => out.push_str(&format!(
                        "  PASS |M| monotone non-decreasing over {} snapshots, final |M| = {} (Lemmas 9–10)\n",
                        sizes.len(),
                        sizes.last().copied().unwrap_or(0),
                    )),
                    Some(i) => violations.push(format!(
                        "|M| decreased from {} to {} at snapshot {} (Lemmas 9–10)",
                        sizes[i],
                        sizes[i + 1],
                        i + 1,
                    )),
                }
            }
            _ => out.push_str("  SKIP |M| check (no pointer-state snapshots in artifact)\n"),
        }
    } else if is_smm {
        out.push_str("  SKIP Theorem 1 / |M| checks (run injected faults)\n");
    } else {
        out.push_str("  SKIP SMM bound checks (artifact is not an SMM run)\n");
    }
    let total_moves: u64 = art.rounds.iter().map(|r| r.moves).sum();
    match art.m {
        Some(m) if m > 0 => out.push_str(&format!(
            "  INFO total moves {total_moves} = {:.2} per edge (Manne et al. O(m) yardstick)\n",
            total_moves as f64 / m as f64,
        )),
        _ => out.push_str(&format!("  INFO total moves {total_moves}\n")),
    }
    for v in &violations {
        out.push_str(&format!("  FAIL {v}\n"));
    }
    if !violations.is_empty() {
        out.push_str(&format!(
            "\n{} bound violation(s) — artifact is inconsistent with the paper\n",
            violations.len(),
        ));
    }
    Ok((out, violations.is_empty()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_empty() -> Args {
        Args::parse(&[]).unwrap()
    }

    fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("selfstab-analyze-{name}-{}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn matched_pairs_counts_mutual_pointers() {
        let s = |v: &[Option<u64>]| -> Vec<Json> {
            v.iter()
                .map(|p| p.map(Json::U64).unwrap_or(Json::Null))
                .collect()
        };
        assert_eq!(matched_pairs(&s(&[None, None])), Some(0));
        // 0↔1 matched; 2 points at 3 but 3 points back at 2 → second pair.
        assert_eq!(
            matched_pairs(&s(&[Some(1), Some(0), Some(3), Some(2)])),
            Some(2)
        );
        // One-sided pointer is not a pair.
        assert_eq!(matched_pairs(&s(&[Some(1), None])), Some(0));
        // Non-pointer states bail out.
        assert_eq!(matched_pairs(&[Json::Bool(true)]), None);
    }

    #[test]
    fn flags_a_decreasing_matching_as_bound_violation() {
        // Hand-corrupted artifact: |M| goes 1 → 0 between rounds.
        let artifact = concat!(
            "{\"event\":\"meta\",\"protocol\":\"SMM\",\"topology\":\"path\",\"n\":2,\"m\":1,\"shards\":1,\"faults\":false}\n",
            "{\"event\":\"init\",\"states\":[1,0]}\n",
            "{\"event\":\"round_end\",\"round\":1,\"privileged\":1,\"evaluated\":2,\"moves_per_rule\":[1,0,0],\"duration_micros\":3,\"states\":[null,null]}\n",
            "{\"event\":\"finish\",\"outcome\":\"stabilized\",\"stabilized\":true,\"states\":[null,null]}\n",
        );
        let path = write_tmp("corrupt", artifact);
        let (report, ok) = analyze(Some(path.to_str().unwrap()), &args_empty()).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(!ok, "{report}");
        assert!(report.contains("|M| decreased from 1 to 0"), "{report}");
    }

    fn service_artifact(recovery: u64) -> String {
        let mut text = concat!(
            "{\"event\":\"meta\",\"mode\":\"service\",\"protocol\":\"SMM\",",
            "\"topology\":\"path\",\"n\":8,\"m\":7,",
            "\"telemetry_format\":\"service-telemetry/v1\",\"telemetry_dropped\":0,",
            "\"telemetry_clients\":[{\"client\":1,\"requests\":3},{\"client\":2,\"requests\":1}],",
            "\"service_events\":[]}\n",
        )
        .to_string();
        for seq in 1..=4u64 {
            text.push_str(&format!(
                concat!(
                    "{{\"event\":\"service-telemetry\",\"seq\":{seq},\"t_micros\":{t},",
                    "\"kind\":\"edge-down\",\"recovery_rounds\":{r},\"moves\":2,",
                    "\"perturbed\":4,\"drain_micros\":120,\"queue_depth\":0,",
                    "\"backend\":\"serial\",\"converged\":true}}\n",
                ),
                seq = seq,
                t = seq * 100,
                r = if seq == 4 { recovery } else { 2 },
            ));
        }
        text
    }

    #[test]
    fn service_artifact_renders_windows_and_passes_bounds() {
        let path = write_tmp("service-ok", &service_artifact(3));
        let args = Args::parse(&["--window".into(), "2".into()]).unwrap();
        let (report, ok) = analyze(Some(path.to_str().unwrap()), &args).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(ok, "{report}");
        assert!(report.contains("service artifact"), "{report}");
        assert!(
            report.contains("telemetry track: service-telemetry/v1"),
            "{report}"
        );
        assert!(
            report.contains("rolling recovery latency (window 2 event(s))"),
            "{report}"
        );
        assert!(
            report.contains("| 1 | 2 |"),
            "two windows of two events: {report}"
        );
        assert!(report.contains("cumulative: 4 event(s)"), "{report}");
        assert!(
            report.contains("| 1 | 3 | 75.0% |"),
            "fairness table: {report}"
        );
        assert!(report.contains("PASS per-event recovery max 3"), "{report}");
    }

    #[test]
    fn service_artifact_recovery_over_budget_fails_and_window_zero_errors() {
        // n = 8 → budget n+2 = 10; an event claiming 13 recovery rounds is
        // inconsistent with the paper's theorems.
        let path = write_tmp("service-bad", &service_artifact(13));
        let (report, ok) = analyze(Some(path.to_str().unwrap()), &args_empty()).unwrap();
        assert!(!ok, "{report}");
        assert!(report.contains("FAIL event recovery 13"), "{report}");

        let args = Args::parse(&["--window".into(), "0".into()]).unwrap();
        let err = analyze(Some(path.to_str().unwrap()), &args).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("--window must be a positive"), "{err}");
    }

    #[test]
    fn truncated_artifact_is_an_error() {
        let path = write_tmp("truncated", "{\"event\":\"init\",\"states\":[null]}\n");
        let err = analyze(Some(path.to_str().unwrap()), &args_empty()).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("no finish event"), "{err}");
        assert!(analyze(Some("/nonexistent/x.jsonl"), &args_empty()).is_err());
        assert!(analyze(None, &args_empty()).is_err());
    }
}
