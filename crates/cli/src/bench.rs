//! The `bench` subcommand: run the standing performance observatory and
//! gate artifacts against each other.
//!
//! `selfstab bench [--quick] [--out <file>] [--pr <id>]` runs the pinned
//! matrix from [`selfstab_bench::observatory`] and writes a
//! schema-versioned `BENCH_<pr>.json`. `selfstab bench --compare
//! <old.json> [<new.json>]` diffs two artifacts cell-by-cell under the
//! noise gate — with only a baseline given, the matrix runs first and the
//! fresh artifact is the comparison's current side. Exit codes mirror
//! `selfstab analyze`: 0 clean, 1 at least one regression beyond noise,
//! 2 unreadable artifact / schema or matrix mismatch / bad flags.

use crate::args::Args;
use selfstab_analysis::gate::{NoiseGate, Verdict};
use selfstab_bench::observatory::{self, BenchArtifact, CompareReport, Tier};

/// Split `bench`'s argv into `--key value` flag tokens and trailing
/// positionals (the current-artifact path of `--compare <old> <new>`),
/// which the shared [`Args`] parser would otherwise reject.
fn split_positionals(rest: &[String]) -> (Vec<String>, Vec<String>) {
    let mut flags = Vec::new();
    let mut positionals = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        if rest[i].starts_with("--") {
            flags.push(rest[i].clone());
            if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                flags.push(rest[i + 1].clone());
                i += 2;
            } else {
                i += 1;
            }
        } else {
            positionals.push(rest[i].clone());
            i += 1;
        }
    }
    (flags, positionals)
}

/// Render the comparison as a human-readable delta table.
fn render_report(base: &BenchArtifact, current: &BenchArtifact, report: &CompareReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "bench compare: baseline pr {} ({}) vs current pr {} ({})\n",
        base.pr, base.tier, current.pr, current.tier
    ));
    if base.machine != current.machine {
        out.push_str(&format!(
            "warning: artifacts measured on different environments ({}/{} {} cpus vs {}/{} {} cpus) — deltas may reflect hardware, not code\n",
            base.machine.os,
            base.machine.arch,
            base.machine.cpus,
            current.machine.os,
            current.machine.arch,
            current.machine.cpus,
        ));
    }
    let total: usize = report.cells.iter().map(|c| c.deltas.len()).sum();
    let regressed = report.count(Verdict::Regressed);
    let improved = report.count(Verdict::Improved);
    out.push_str(&format!(
        "{total} metric deltas over {} cells: {regressed} regressed, {improved} improved, {} within noise\n",
        report.cells.len(),
        total - regressed - improved,
    ));
    let flagged = report.flagged();
    if flagged.is_empty() {
        out.push_str("no deltas beyond the noise gate\n");
    } else {
        out.push_str("\n| cell | metric | baseline | current | Δ | verdict |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        for (id, d) in flagged {
            out.push_str(&format!(
                "| {id} | {} | {:.1} | {:.1} | {:+.1}% | {} |\n",
                d.metric,
                d.base.median,
                d.current.median,
                100.0 * d.rel,
                match d.verdict {
                    Verdict::Regressed => "REGRESSED",
                    Verdict::Improved => "improved",
                    Verdict::Unchanged => "unchanged",
                },
            ));
        }
    }
    out
}

/// Entry point for `selfstab bench`. Writes progress and the report to
/// `out`; returns the process exit code.
pub fn bench_main(rest: &[String], out: &mut dyn std::io::Write) -> i32 {
    let (flag_tokens, positionals) = split_positionals(rest);
    let args = match Args::parse(&flag_tokens) {
        Ok(a) => a,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };
    match bench_inner(&args, &positionals, out) {
        Ok(code) => code,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            2
        }
    }
}

fn bench_inner(
    args: &Args,
    positionals: &[String],
    out: &mut dyn std::io::Write,
) -> Result<i32, String> {
    if positionals.len() > 1 {
        return Err(format!(
            "too many positional arguments ({}): expected at most one (the current artifact of --compare <old> <new>)",
            positionals.len()
        ));
    }
    let baseline_path = args.get("compare");
    if baseline_path.is_none() && !positionals.is_empty() {
        return Err(format!(
            "unexpected positional argument '{}' (did you mean --compare <old> <new>?)",
            positionals[0]
        ));
    }
    let gate = NoiseGate::with_threshold(args.parse_or("rel-threshold", 0.10)?);

    // Pure compare: both artifacts already on disk, nothing runs.
    if let (Some(base_path), Some(cur_path)) = (baseline_path, positionals.first()) {
        let base = BenchArtifact::read_from(base_path)?;
        let current = BenchArtifact::read_from(cur_path)?;
        let report = observatory::compare(&base, &current, &gate)?;
        let _ = writeln!(out, "{}", render_report(&base, &current, &report));
        return Ok(i32::from(report.count(Verdict::Regressed) > 0));
    }

    // Measurement: run the pinned matrix, write the artifact, optionally
    // gate it against the baseline.
    let tier = if args.bool_flag("quick") {
        Tier::Quick
    } else {
        Tier::Default
    };
    let n = match args.get("n") {
        Some(_) => Some(args.parse_or("n", 0usize)?),
        None => None,
    };
    let reps = match args.get("reps") {
        Some(_) => Some(args.parse_or("reps", 0usize)?),
        None => None,
    };
    if reps == Some(0) {
        return Err("--reps must be at least 1".into());
    }
    let pr = args.str_or("pr", "dev").to_string();
    let default_out = format!("BENCH_{pr}.json");
    let out_path = args.str_or("out", &default_out).to_string();

    let _ = writeln!(
        out,
        "bench: tier {} (n={}, reps={}), {} schema, matrix {} cells",
        tier.name(),
        n.unwrap_or_else(|| tier.n()),
        reps.unwrap_or_else(|| tier.reps()),
        observatory::SCHEMA,
        3 * 3 * (2 + observatory::SHARD_COUNTS.len()) * 2,
    );
    let mut progress = |line: &str| {
        let _ = writeln!(out, "  {line}");
    };
    let artifact = observatory::run_matrix(tier, n, reps, &pr, &mut progress);
    artifact
        .write_to(&out_path)
        .map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    let _ = writeln!(out, "wrote {out_path} ({} records)", artifact.records.len());

    if let Some(base_path) = baseline_path {
        let base = BenchArtifact::read_from(base_path)?;
        let report = observatory::compare(&base, &artifact, &gate)?;
        let _ = writeln!(out, "{}", render_report(&base, &artifact, &report));
        return Ok(i32::from(report.count(Verdict::Regressed) > 0));
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_split_from_flags() {
        let (flags, pos) = split_positionals(&sv(&["--compare", "a.json", "b.json", "--quick"]));
        assert_eq!(flags, sv(&["--compare", "a.json", "--quick"]));
        assert_eq!(pos, sv(&["b.json"]));
        let (flags, pos) = split_positionals(&sv(&["--quick", "--out", "f.json"]));
        assert_eq!(flags, sv(&["--quick", "--out", "f.json"]));
        assert!(pos.is_empty());
    }

    #[test]
    fn bad_flags_and_stray_positionals_exit_2() {
        let mut buf = Vec::new();
        assert_eq!(bench_main(&sv(&["stray.json"]), &mut buf), 2);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("unexpected positional"), "{text}");

        let mut buf = Vec::new();
        assert_eq!(
            bench_main(&sv(&["--compare", "a.json", "b.json", "c.json"]), &mut buf),
            2
        );

        let mut buf = Vec::new();
        assert_eq!(
            bench_main(
                &sv(&[
                    "--compare",
                    "/nonexistent/base.json",
                    "/nonexistent/cur.json"
                ]),
                &mut buf
            ),
            2
        );
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("cannot read"), "{text}");
    }
}
