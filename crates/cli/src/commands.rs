//! The `run`, `sim`, and `verify` subcommands.

use crate::args::Args;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_adhoc::{BeaconConfig, BeaconSim, Topology};
use selfstab_core::coloring::Coloring;
use selfstab_core::smm::{SelectPolicy, Smm};
use selfstab_core::Smi;
use selfstab_engine::active::Schedule;
use selfstab_engine::chaos::{run_churned_serial_observed, ChurnSchedule};
use selfstab_engine::exhaustive::{all_connected_graphs, verify_all_initial_states};
use selfstab_engine::faults::CrashAt;
use selfstab_engine::obs::{ChromeTraceWriter, Gauge, JsonlEventLog, MetricsCollector};
use selfstab_engine::protocol::{InitialState, Protocol, WireState};
use selfstab_engine::sync::{Outcome, SyncExecutor};
use selfstab_graph::mutate::TopologyEvent;
use selfstab_graph::{dot, generators, Graph, Ids};
use selfstab_json::{Json, ToJson};
use selfstab_runtime::{run_churned_sharded, CrashSpec, FaultPlan, RuntimeExecutor};

/// Usage text shown by `help` and on errors.
pub const USAGE: &str = "\
selfstab — self-stabilizing maximal matching / MIS / coloring (IPDPS 2003 reproduction)

USAGE:
  selfstab run    --protocol smm|smi|coloring (--topology <name> --n <N> | --graph6 <str>)
                  [--ids identity|reversed|random] [--init default|random]
                  [--seed <u64>] [--max-rounds <N>] [--format text|json|dot]
                  [--metrics] [--trace-out <file>]
                  [--profile [--profile-out <file>]]
                  [--crash-at <round>:<frac>]       (serial executors only)
                  [--schedule full|active]
                  [--shards <K> [--channel-cap <M>]]
                  [--chaos drop=P,dup=P,delay=K,corrupt=P[,delayp=P][,until=R]
                          [,byz=ID+ID+…[,strat=random|mimic|oscillate]][,asym=P]]
                  [--crash-shard S@R[,S@R…]]       (chaos flags require --shards)
                  [--churn-every <N> [--churn-events <K>] [--churn-epochs <E>]]
                  [--propose min-id|max-id|first|clockwise|hashed]   (smm only)
  selfstab sim    --protocol smm|smi|coloring --topology <name> --n <N>
                  [--jitter <frac>] [--loss <prob>] [--mobility <speed>]
                  [--seconds <N>] [--seed <u64>] [--metrics]
                  [--chaos drop=P,dup=P,delay=K,corrupt=P[,delayp=P][,asym=P]]

  --metrics appends a per-round convergence table (for SMM: the Fig. 2
  node-type census and the matched-pair count |M|); --trace-out writes a
  chrome://tracing-loadable JSON timeline of the run. --schedule active
  (the default) evaluates only nodes whose closed neighborhood changed in
  the previous round — identical results to the full sweep, fewer guard
  evaluations; full re-evaluates everything every round. --shards K
  executes on the sharded message-passing runtime (K mailbox workers,
  beacon frames over bounded channels; no cycle detection) — identical
  states and round counts to the in-process executor; under the active
  schedule only moved boundary states are re-broadcast (delta beacons).
  --propose overrides SMM's R2 selection (the paper's min-id is what makes
  SMM stabilize; clockwise reproduces the C4 counterexample). --chaos
  injects a seeded fault plan at the shard channel boundary: beacon frames
  are dropped, duplicated, delayed K rounds, or bit-corrupted (detected
  and skipped by the wire layer; receivers fall back to the last cached
  beacon). byz= marks nodes Byzantine: each hot round their state is
  rewritten into an adversarial but well-formed value (strat= picks the
  rewrite strategy; runs with byz nodes also report honest-core
  containment). asym= makes each link direction fail independently with
  probability P, so a link can pass u→v while dropping v→u.
  --crash-shard kills worker S entering round R and respawns it
  from arbitrary states. --churn-every applies connectivity-preserving
  link churn every N rounds on any executor; legitimacy is then judged on
  the final, mutated topology. All chaos is deterministic given --seed.
  --profile records a JSONL artifact of the run (per-round phase spans,
  per-shard skew, backpressure gauges, post-round states) to --profile-out,
  defaulting to the --trace-out stem with a .jsonl extension, else
  selfstab-profile.jsonl. --crash-at <round>:<frac> re-randomizes a seeded
  ⌈frac·n⌉-node subset entering the given round on the serial executor —
  the non-sharded mirror of --crash-shard. `sim --chaos` accepts the same
  spec grammar and applies the same fate hashing to beacon deliveries per
  beacon period (byz= is rejected there: state rewrites need the
  round-synchronous executors).
  selfstab verify --protocol smm|smi|coloring --max-n <N<=5>
  selfstab analyze <artifact.jsonl> [--window <events>]
                  offline report over a --profile
                  artifact: per-phase critical path, shard skew (straggler
                  lane), backpressure hot channels, chaos recovery timeline,
                  and paper bound checks (SMM rounds ≤ n+1, monotone |M|,
                  moves vs. the Manne et al. O(m) yardstick). Exits 1 on a
                  bound violation, 2 on an unreadable artifact. A
                  `serve --profile-out` artifact is detected by its meta
                  line and analyzed as an event stream instead: rolling
                  recovery-latency/drain tables every --window events,
                  per-client fairness, and the per-event n+2 recovery gate.
  selfstab bench  [--quick] [--out <file>] [--pr <id>] [--n <N>] [--reps <R>]
                  [--compare <old.json> [<new.json>]] [--rel-threshold <frac>]
                  standing performance observatory: runs the pinned matrix
                  (SMM/SMI/Hsu-Huang x path/star/unit-disk x serial/parallel/
                  runtime@1,2,4,8 x full/active) over the seeded suite grid and
                  writes a schema-versioned BENCH_<pr>.json (rounds/sec,
                  guard-evals/sec, wire bytes/round, suppressed frames, inbox
                  depth, shard skew; repetition count + median + IQR per cell).
                  --quick is the CI tier (small n, 1 rep); the default tier
                  measures the 10^5-node cells. --compare diffs two artifacts
                  cell-by-cell under a noise gate (flags only deltas beyond
                  both --rel-threshold, default 10%, AND the pooled IQR);
                  with one path the matrix runs first and is gated against
                  that baseline. Exits 1 on a regression, 2 on an unreadable
                  artifact or a mismatched matrix. `selfstab analyze` accepts
                  the same artifacts and renders the wire/skew columns.
  selfstab topology --topology <name> --n <N> [--seed <u64>] [--format text|graph6|dot]
  selfstab serve  --protocol smm|smi --topology <name> --n <N>
                  (--script <file> | --socket <path>)
                  [--ids identity|reversed|random] [--init default|random]
                  [--seed <u64>] [--budget <rounds>] [--metrics]
                  [--shards <K>] [--channel-cap <frames>]
                  [--snapshot-out <file>] [--snapshot-every <N|Ns|Nms>]
                  [--resume <snapshot.json>] [--profile-out <file>]
                  [--telemetry-addr <host:port>]
                  resident overlay-maintenance daemon: stabilizes the
                  protocol, then ingests mutation events (edge-up/down,
                  node-join/leave) and answers queries (membership, census,
                  status, latency) as line-delimited JSON, re-converging
                  only the perturbed closed neighborhoods after each event
                  (budget defaults to the paper bound n+2). --script replays
                  a request file through the deterministic sim environment
                  and prints each reply; --socket listens on a Unix domain
                  socket until a client sends {\"op\":\"shutdown\"} or SIGINT
                  — shutdown drains the queue and settles before exit, so
                  --snapshot-out always captures a legitimate configuration.
                  --metrics appends the per-event recovery table (rounds and
                  moves per mutation); --profile-out writes the JSONL spine
                  with per-event records in the meta line plus the rolling
                  service-telemetry/v1 track (one line per drained event).
                  --telemetry-addr binds a std-only TCP listener serving
                  the live registry in Prometheus text exposition (the
                  same numbers as the {\"op\":\"query\",\"what\":\"telemetry\"}
                  wire query); the bound address is printed to stderr at
                  startup. --snapshot-every writes selfstab-snapshot/v1
                  documents in the background (bare N = every N events,
                  Ns/Nms = on the service clock; requires --snapshot-out;
                  tmp+rename, so a crash never truncates the last good
                  snapshot); --resume boots from such a document instead
                  of generating a topology — a legitimate snapshot
                  re-stabilizes in 0 rounds. --shards K runs
                  each event's re-convergence drain through the sharded
                  mailbox runtime (K worker threads, state- and
                  round-identical to the serial drain; --channel-cap bounds
                  each cross-shard channel) — pays off on large perturbed
                  regions, e.g. hub departures on dense graphs.
  selfstab client (--socket <path> (--script <file> | --send <line>)
                  | --scrape <host:port>)
                  scripted client for a --socket daemon; prints one reply
                  line per request. --scrape instead fetches one Prometheus
                  exposition from a daemon's --telemetry-addr listener.

topologies: path cycle star complete grid binary-tree hypercube
            unit-disk gnp tree petersen";

pub(crate) fn build_topology(name: &str, n: usize, rng: &mut StdRng) -> Result<Graph, String> {
    Ok(match name {
        "path" => generators::path(n),
        "cycle" => generators::cycle(n.max(3)),
        "star" => generators::star(n),
        "complete" => generators::complete(n),
        "grid" => generators::Family::Grid.build(n),
        "binary-tree" => generators::binary_tree(n),
        "hypercube" => generators::Family::Hypercube.build(n.max(2)),
        "unit-disk" => {
            let r = (2.2 * (n as f64).ln() / n as f64).sqrt().min(1.0);
            generators::random_geometric_connected(n, r, rng)
        }
        "gnp" => {
            let p = (2.0 * (n as f64).ln() / n as f64).min(1.0);
            generators::erdos_renyi_connected(n, p, rng)
        }
        "tree" => generators::random_tree(n, rng),
        "petersen" => generators::petersen(),
        other => return Err(format!("unknown topology '{other}'")),
    })
}

/// Parse `--shards` / `--channel-cap` into `(shards, channel capacity)`;
/// `None` means "run on the in-process executor".
pub(crate) fn parse_shards(args: &Args) -> Result<Option<(usize, usize)>, String> {
    let Some(raw) = args.get("shards") else {
        if args.get("channel-cap").is_some() {
            return Err("--channel-cap requires --shards".into());
        }
        return Ok(None);
    };
    let shards: usize = raw
        .parse()
        .map_err(|_| format!("flag --shards: cannot parse '{raw}'"))?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let cap: usize = args.parse_or("channel-cap", selfstab_runtime::DEFAULT_CHANNEL_CAP)?;
    if cap == 0 {
        return Err("--channel-cap must be at least 1".into());
    }
    Ok(Some((shards, cap)))
}

/// Parse `--chaos` / `--crash-shard` into a [`FaultPlan`] seeded from the
/// run's `--seed`; `None` means "no fault injection".
fn parse_chaos(args: &Args, seed: u64) -> Result<Option<FaultPlan>, String> {
    let spec = args.get("chaos");
    let crash = args.get("crash-shard");
    if spec.is_none() && crash.is_none() {
        return Ok(None);
    }
    let mut plan = match spec {
        Some(s) => {
            FaultPlan::parse_spec(s, seed ^ 0xfa17).map_err(|e| format!("flag --chaos: {e}"))?
        }
        None => FaultPlan::new(seed ^ 0xfa17),
    };
    if let Some(specs) = crash {
        for part in specs.split(',') {
            let c =
                CrashSpec::parse(part.trim()).map_err(|e| format!("flag --crash-shard: {e}"))?;
            plan = plan.with_crash(c.shard, c.round);
        }
    }
    Ok(Some(plan))
}

/// Parse `--churn-every`/`--churn-events`/`--churn-epochs` into a seeded
/// [`ChurnSchedule`]; `None` means "static topology".
fn parse_churn(args: &Args, seed: u64) -> Result<Option<ChurnSchedule>, String> {
    let Some(raw) = args.get("churn-every") else {
        for dep in ["churn-events", "churn-epochs"] {
            if args.get(dep).is_some() {
                return Err(format!("--{dep} requires --churn-every"));
            }
        }
        return Ok(None);
    };
    let every: usize = raw
        .parse()
        .map_err(|_| format!("flag --churn-every: cannot parse '{raw}'"))?;
    let schedule = ChurnSchedule::new(every, seed ^ 0xc4c4)
        .with_events(args.parse_or("churn-events", 1)?)
        .with_epochs(args.parse_or("churn-epochs", 1)?);
    schedule
        .validate()
        .map_err(|e| format!("flag --churn-every: {e}"))?;
    Ok(Some(schedule))
}

/// What a churned run leaves behind: the final (mutated) topology, the
/// applied `(round, event)` log, and the re-stabilization round count.
type ChurnedOutcome = (Graph, Vec<(usize, TopologyEvent)>, Option<usize>);

fn parse_propose_policy(args: &Args) -> Result<SelectPolicy, String> {
    Ok(match args.str_or("propose", "min-id") {
        "min-id" => SelectPolicy::MinId,
        "max-id" => SelectPolicy::MaxId,
        "first" => SelectPolicy::FirstIndex,
        "clockwise" => SelectPolicy::Clockwise,
        "hashed" => SelectPolicy::Hashed,
        other => return Err(format!("unknown propose policy '{other}'")),
    })
}

pub(crate) fn build_ids(kind: &str, n: usize, rng: &mut StdRng) -> Result<Ids, String> {
    Ok(match kind {
        "identity" => Ids::identity(n),
        "reversed" => Ids::reversed(n),
        "random" => Ids::random(n, rng),
        other => return Err(format!("unknown id assignment '{other}'")),
    })
}

struct RunReport {
    protocol: String,
    topology: String,
    n: usize,
    m: usize,
    rounds: usize,
    outcome: String,
    moves_per_rule: Vec<(String, u64)>,
    legitimate: bool,
    result_summary: String,
    states: Vec<String>,
    metrics: Option<Json>,
    shards: Option<usize>,
    chaos: Option<String>,
    churn: Option<Json>,
    containment: Option<Json>,
}

impl ToJson for RunReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("protocol".to_string(), self.protocol.to_json()),
            ("topology".to_string(), self.topology.to_json()),
            ("n".to_string(), self.n.to_json()),
            ("m".to_string(), self.m.to_json()),
            ("rounds".to_string(), self.rounds.to_json()),
            ("outcome".to_string(), self.outcome.to_json()),
            ("moves_per_rule".to_string(), self.moves_per_rule.to_json()),
            ("legitimate".to_string(), self.legitimate.to_json()),
            ("result_summary".to_string(), self.result_summary.to_json()),
            ("states".to_string(), self.states.to_json()),
        ];
        if let Some(k) = self.shards {
            fields.push(("shards".to_string(), k.to_json()));
        }
        if let Some(c) = &self.chaos {
            fields.push(("chaos".to_string(), c.to_json()));
        }
        if let Some(c) = &self.churn {
            fields.push(("churn".to_string(), c.clone()));
        }
        if let Some(c) = &self.containment {
            fields.push(("containment".to_string(), c.clone()));
        }
        if let Some(m) = &self.metrics {
            fields.push(("metrics".to_string(), m.clone()));
        }
        Json::Object(fields)
    }
}

// The renderer callbacks are what make the argument list long; bundling
// them into a struct would not make the three call sites clearer.
#[allow(clippy::too_many_arguments)]
fn execute<P: Protocol>(
    proto: &P,
    g: &Graph,
    args: &Args,
    protocol_name: &str,
    topology_name: &str,
    gauges: Vec<(String, Gauge<P::State>)>,
    summarize: impl Fn(&Graph, &[P::State]) -> String,
    render_state: impl Fn(&P::State) -> String,
    highlight: impl Fn(&Graph, &[P::State]) -> (Vec<selfstab_graph::Edge>, Vec<bool>),
) -> Result<String, String>
where
    P::State: WireState + ToJson,
{
    let n = g.n();
    let seed: u64 = args.parse_or("seed", 0)?;
    let max_rounds: usize = args.parse_or("max-rounds", 4 * n + 16)?;
    let init = match args.str_or("init", "random") {
        "default" => InitialState::Default,
        "random" => InitialState::Random { seed },
        other => return Err(format!("unknown init '{other}'")),
    };
    let shards = parse_shards(args)?;
    let chaos = parse_chaos(args, seed)?;
    if chaos.is_some() && shards.is_none() {
        return Err("--chaos/--crash-shard require --shards".into());
    }
    let churn = parse_churn(args, seed)?;
    let crash_at = match args.get("crash-at") {
        Some(spec) => {
            let c = CrashAt::parse(spec).map_err(|e| format!("flag --crash-at: {e}"))?;
            if shards.is_some() {
                return Err(
                    "--crash-at drives the serial executor; use --crash-shard S@R with --shards"
                        .into(),
                );
            }
            if churn.is_some() {
                return Err("--crash-at cannot be combined with --churn-every".into());
            }
            Some(c.with_seed(seed ^ 0xc4a5))
        }
        None => None,
    };
    let schedule = Schedule::parse(args.str_or("schedule", "active"))
        .map_err(|e| format!("flag --schedule: {e}"))?;
    let trace_out = args.get("trace-out").map(str::to_string);
    let profile_out = (args.bool_flag("profile") || args.get("profile-out").is_some()).then(|| {
        match args.get("profile-out") {
            Some(p) => p.to_string(),
            // Default the artifact next to the Chrome trace (same stem,
            // .jsonl), or to a fixed name when no trace was requested.
            None => match &trace_out {
                Some(t) => std::path::Path::new(t)
                    .with_extension("jsonl")
                    .to_string_lossy()
                    .into_owned(),
                None => "selfstab-profile.jsonl".to_string(),
            },
        }
    });
    let mut metrics = args
        .bool_flag("metrics")
        .then(|| MetricsCollector::new().with_gauges(gauges));
    let mut chrome = trace_out
        .as_ref()
        .map(|_| ChromeTraceWriter::with_rule_names(proto.rule_names()));
    let mut jsonl = profile_out.as_ref().map(|_| JsonlEventLog::new());
    // Set for churned runs: the final (mutated) graph, the applied events,
    // and the re-stabilization time after the last event.
    let mut churned: Option<ChurnedOutcome> = None;
    let (run, runtime_note) = match (shards, &churn) {
        (Some((k, cap)), Some(sched)) => {
            let out = run_churned_sharded(
                g,
                proto,
                k,
                schedule,
                Some(cap),
                chaos.as_ref(),
                sched,
                init,
                max_rounds,
                &mut (metrics.as_mut(), (chrome.as_mut(), jsonl.as_mut())),
            )
            .map_err(|e| format!("runtime: {e}"))?;
            let recovery = out.recovery_rounds();
            churned = Some((out.graph, out.events, recovery));
            (out.run, Some(format!("{k} shards, channel cap {cap}")))
        }
        (Some((k, cap)), None) => {
            let mut exec = RuntimeExecutor::new(g, proto, k)
                .with_channel_cap(cap)
                .with_schedule(schedule);
            if let Some(plan) = chaos.clone() {
                exec = exec.with_chaos(plan);
            }
            let cut = exec.partition().cut_edges(g).len();
            let run = exec
                .run_observed(
                    init,
                    max_rounds,
                    &mut (metrics.as_mut(), (chrome.as_mut(), jsonl.as_mut())),
                )
                .map_err(|e| format!("runtime: {e}"))?;
            (
                run,
                Some(format!("{k} shards, channel cap {cap}, {cut} cut edges")),
            )
        }
        (None, Some(sched)) => {
            let out = run_churned_serial_observed(
                g,
                proto,
                schedule,
                sched,
                init,
                max_rounds,
                &mut (metrics.as_mut(), (chrome.as_mut(), jsonl.as_mut())),
            )?;
            let recovery = out.recovery_rounds();
            churned = Some((out.graph, out.events, recovery));
            (out.run, None)
        }
        (None, None) => {
            let mut exec = SyncExecutor::new(g, proto)
                .with_cycle_detection()
                .with_schedule(schedule);
            if let Some(c) = crash_at.clone() {
                exec = exec.with_crash(c);
            }
            (
                exec.run_observed(
                    init,
                    max_rounds,
                    &mut (metrics.as_mut(), (chrome.as_mut(), jsonl.as_mut())),
                ),
                None,
            )
        }
    };
    if let (Some(path), Some(writer)) = (&trace_out, &chrome) {
        writer
            .write_to(path)
            .map_err(|e| format!("--trace-out {path}: {e}"))?;
    }
    if let (Some(path), Some(log)) = (&profile_out, jsonl.as_mut()) {
        // The meta line is what lets `analyze` pick the right bound checks
        // (Theorem 1 and the |M| monotonicity only hold fault-free).
        log.push_meta([
            ("protocol".to_string(), protocol_name.to_json()),
            ("topology".to_string(), topology_name.to_json()),
            ("n".to_string(), n.to_json()),
            ("m".to_string(), g.m().to_json()),
            (
                "shards".to_string(),
                shards.map(|(k, _)| k).unwrap_or(1).to_json(),
            ),
            ("seed".to_string(), seed.to_json()),
            ("max_rounds".to_string(), max_rounds.to_json()),
            (
                "rules".to_string(),
                Json::Array(proto.rule_names().iter().map(|r| r.to_json()).collect()),
            ),
            (
                "faults".to_string(),
                (chaos.is_some() || crash_at.is_some() || churn.is_some()).to_json(),
            ),
        ]);
        log.write_to(path)
            .map_err(|e| format!("--profile-out {path}: {e}"))?;
    }
    let outcome = match run.outcome {
        Outcome::Stabilized => "stabilized".to_string(),
        Outcome::Cycle { period, .. } => format!("oscillates (period {period})"),
        Outcome::RoundLimit => "round limit hit".to_string(),
    };
    // Legitimacy of the final states is a property of the topology they
    // ended on: for churned runs that is the mutated graph.
    let final_graph: &Graph = churned.as_ref().map(|(fg, _, _)| fg).unwrap_or(g);
    let legitimate = run.stabilized() && proto.is_legitimate(final_graph, &run.final_states);
    let chaos_note = chaos
        .as_ref()
        .map(|plan| {
            let mut parts: Vec<String> = Vec::new();
            if let Some(spec) = args.get("chaos") {
                parts.push(spec.to_string());
            }
            if !plan.crashes.is_empty() {
                parts.push(format!(
                    "crash {}",
                    plan.crashes
                        .iter()
                        .map(|c| format!("{}@{}", c.shard, c.round))
                        .collect::<Vec<_>>()
                        .join(",")
                ));
            }
            parts.join(", ")
        })
        .or_else(|| {
            crash_at.as_ref().map(|c| {
                format!(
                    "crash-at round {}: re-randomized {:.0}% of nodes",
                    c.round,
                    c.frac * 100.0
                )
            })
        });
    let churn_note = churned
        .as_ref()
        .zip(churn.as_ref())
        .map(|((fg, events, recovery), sched)| {
            let mut s = format!(
                "{} link events over {} epoch(s), every {} rounds; final m={}",
                events.len(),
                sched.epochs,
                sched.every,
                fg.m()
            );
            if let Some(r) = recovery {
                s.push_str(&format!("; re-stabilized {r} rounds after last event"));
            }
            s
        });
    let fault_recovery = metrics.as_ref().and_then(|m| m.recovery_rounds());
    // Byzantine containment: with compromised nodes in the plan, judge the
    // final states on the *honest* subgraph and report how far from the
    // compromised set the damage reaches (see graph::predicates).
    let containment = chaos.as_ref().filter(|p| !p.byz.is_empty()).and_then(|p| {
        let mut mask = vec![false; final_graph.n()];
        for b in &p.byz {
            if b.index() < mask.len() {
                mask[b.index()] = true;
            }
        }
        proto.containment(final_graph, &run.final_states, &mask)
    });
    match args.str_or("format", "text") {
        "text" => {
            let mut out = format!(
                "protocol {protocol_name} on {topology_name} (n={n}, m={})\n\
                 outcome:   {outcome} after {} rounds (bound-style budget {max_rounds})\n\
                 legitimate: {legitimate}\n\
                 {}\n\
                 moves: {}",
                g.m(),
                run.rounds(),
                summarize(final_graph, &run.final_states),
                proto
                    .rule_names()
                    .iter()
                    .zip(&run.moves_per_rule)
                    .map(|(name, k)| format!("{name}={k}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            if let Some(note) = &runtime_note {
                out.push_str(&format!("\nruntime: {note}"));
            }
            if let Some(p) = &profile_out {
                out.push_str(&format!("\nprofile: {p}"));
            }
            if let Some(c) = &chaos_note {
                out.push_str(&format!("\nchaos: {c}"));
            }
            if let Some(c) = &churn_note {
                out.push_str(&format!("\nchurn: {c}"));
            }
            if let Some(r) = fault_recovery {
                out.push_str(&format!(
                    "\nrecovery: stabilized {r} rounds after the last injected fault"
                ));
            }
            if let Some(c) = &containment {
                let radius = if c.radius == usize::MAX {
                    "unbounded".to_string()
                } else {
                    c.radius.to_string()
                };
                out.push_str(&format!(
                    "\ncontainment: honest core legitimate: {}; perturbed honest nodes: {}; radius: {radius}",
                    c.honest_legitimate(),
                    c.perturbed.len(),
                ));
            }
            if let Some(m) = &metrics {
                out.push_str("\n\nper-round convergence metrics\n");
                out.push_str(&m.render_table());
            }
            Ok(out)
        }
        "json" => {
            let churn_json = churned.as_ref().map(|(fg, events, recovery)| {
                let mut fields = vec![
                    (
                        "events".to_string(),
                        Json::Array(
                            events
                                .iter()
                                .map(|(round, ev)| {
                                    let e = ev.edge();
                                    let kind = if matches!(ev, TopologyEvent::LinkUp { .. }) {
                                        "up"
                                    } else {
                                        "down"
                                    };
                                    Json::Object(vec![
                                        ("round".to_string(), round.to_json()),
                                        ("kind".to_string(), kind.to_json()),
                                        ("a".to_string(), e.a.index().to_json()),
                                        ("b".to_string(), e.b.index().to_json()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("final_m".to_string(), fg.m().to_json()),
                ];
                if let Some(r) = recovery {
                    fields.push(("recovery_rounds".to_string(), r.to_json()));
                }
                Json::Object(fields)
            });
            let report = RunReport {
                protocol: protocol_name.into(),
                topology: topology_name.into(),
                n,
                m: g.m(),
                rounds: run.rounds(),
                outcome,
                moves_per_rule: proto
                    .rule_names()
                    .iter()
                    .map(|s| s.to_string())
                    .zip(run.moves_per_rule.iter().copied())
                    .collect(),
                legitimate,
                result_summary: summarize(final_graph, &run.final_states),
                states: run.final_states.iter().map(&render_state).collect(),
                metrics: metrics.as_ref().map(MetricsCollector::to_json),
                shards: shards.map(|(k, _)| k),
                chaos: chaos_note,
                churn: churn_json,
                containment: containment.as_ref().map(|c| {
                    Json::Object(vec![
                        (
                            "honest_core_legitimate".to_string(),
                            c.honest_legitimate().to_json(),
                        ),
                        (
                            "perturbed_honest".to_string(),
                            Json::Array(c.perturbed.iter().map(|v| v.index().to_json()).collect()),
                        ),
                        (
                            "radius".to_string(),
                            if c.radius == usize::MAX {
                                Json::Null
                            } else {
                                c.radius.to_json()
                            },
                        ),
                    ])
                }),
            };
            Ok(report.to_json().to_string_pretty())
        }
        "dot" => {
            let (edges, nodes) = highlight(final_graph, &run.final_states);
            Ok(dot::to_dot(final_graph, None, &edges, &nodes))
        }
        other => Err(format!("unknown format '{other}'")),
    }
}

/// `selfstab run …`
pub fn run(args: &Args) -> Result<String, String> {
    let protocol = args.required("protocol")?.to_string();
    let seed: u64 = args.parse_or("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc11);
    let (g, topology) = if let Some(g6) = args.get("graph6") {
        let g = selfstab_graph::graph6::parse(g6).map_err(|e| format!("--graph6: {e}"))?;
        (g, "graph6 input".to_string())
    } else {
        let topology = args.required("topology")?.to_string();
        let n: usize = args.parse_or("n", 16)?;
        (build_topology(&topology, n, &mut rng)?, topology)
    };
    let ids = build_ids(args.str_or("ids", "identity"), g.n(), &mut rng)?;
    match protocol.as_str() {
        "smm" => {
            let proto = Smm::with_policies(ids, SelectPolicy::MinId, parse_propose_policy(args)?);
            execute(
                &proto,
                &g,
                args,
                "SMM",
                &topology,
                selfstab_core::smm::types::census_gauges(&g),
                |g, s| {
                    let m = Smm::matched_edges(g, s);
                    format!("maximal matching with {} edges: {m:?}", m.len())
                },
                |s| format!("{s:?}"),
                |g, s| (Smm::matched_edges(g, s), Smm::matched_nodes(g, s)),
            )
        }
        "smi" => {
            let proto = Smi::new(ids);
            execute(
                &proto,
                &g,
                args,
                "SMI",
                &topology,
                vec![(
                    "set_size".to_string(),
                    Box::new(|s: &[bool]| s.iter().filter(|&&x| x).count() as u64) as Gauge<bool>,
                )],
                |_, s| {
                    let members = Smi::members(s);
                    format!(
                        "maximal independent set with {} members: {members:?}",
                        members.len()
                    )
                },
                |s| if *s { "1".into() } else { "0".into() },
                |_, s| (Vec::new(), s.to_vec()),
            )
        }
        "coloring" => {
            let proto = Coloring::new(ids);
            execute(
                &proto,
                &g,
                args,
                "SC",
                &topology,
                vec![(
                    "palette_size".to_string(),
                    Box::new(|s: &[u32]| Coloring::palette_size(s) as u64) as Gauge<u32>,
                )],
                |_, s| {
                    format!(
                        "proper coloring with {} colors: {s:?}",
                        Coloring::palette_size(s)
                    )
                },
                |s| s.to_string(),
                |_, s| (Vec::new(), s.iter().map(|&c| c == 0).collect()),
            )
        }
        other => Err(format!("unknown protocol '{other}'")),
    }
}

/// `selfstab sim …`
pub fn sim(args: &Args) -> Result<String, String> {
    let protocol = args.required("protocol")?.to_string();
    let topology_name = args.required("topology")?.to_string();
    let n: usize = args.parse_or("n", 16)?;
    let seed: u64 = args.parse_or("seed", 0)?;
    let jitter: f64 = args.parse_or("jitter", 0.05)?;
    let loss: f64 = args.parse_or("loss", 0.0)?;
    let mobility: f64 = args.parse_or("mobility", 0.0)?;
    let seconds: u64 = args.parse_or("seconds", 60)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51b);

    let mut config = BeaconConfig {
        seed,
        sample_legitimacy: true,
        ..BeaconConfig::default()
    }
    .with_jitter(jitter);
    if loss > 0.0 {
        config = config.with_loss(loss);
    }
    // Same spec grammar and fate hashing as `run --chaos`, applied per
    // beacon period. Byzantine rewrites need the round-synchronous
    // executors (`run --shards`) and are rejected here.
    let chaos = match args.get("chaos") {
        Some(s) => {
            let plan = FaultPlan::parse_spec(s, seed ^ 0xfa17)
                .map_err(|e| format!("flag --chaos: {e}"))?;
            if !plan.byz.is_empty() {
                return Err(
                    "flag --chaos: byz= needs round-synchronous state rewrites; \
                     use `run --shards N --chaos byz=…` instead of `sim`"
                        .into(),
                );
            }
            Some(plan)
        }
        None => None,
    };
    let (topology, static_graph) = if mobility > 0.0 {
        let model = selfstab_adhoc::mobility::RandomWaypoint::new(
            n,
            selfstab_adhoc::geometry::Region::unit(),
            0.45,
            mobility,
            seed,
        );
        (
            Topology::Mobile {
                model,
                tick: config.beacon_interval,
            },
            None,
        )
    } else {
        let g = build_topology(&topology_name, n, &mut rng)?;
        (Topology::Static(g.clone()), Some(g))
    };
    let ids = build_ids(args.str_or("ids", "identity"), n, &mut rng)?;
    let horizon = seconds * 1_000_000;
    let quiet = if mobility > 0.0 {
        u64::MAX / 1_000_000
    } else {
        10
    };

    fn report_text<S>(label: &str, r: &selfstab_adhoc::SimReport<S>, legitimate: bool) -> String {
        format!(
            "beacon simulation of {label}\n\
             quiesced: {} (stabilization ≈ {:.1} beacon periods)\n\
             beacons {}  deliveries {}  losses {}  evaluations {}\n\
             predicate held in {:.1}% of sampled periods; final state legitimate: {}",
            r.quiesced,
            r.stabilization_periods,
            r.beacons_sent,
            r.deliveries,
            r.losses,
            r.evaluations,
            100.0 * r.legitimacy_fraction(),
            legitimate
        )
    }

    let want_metrics = args.bool_flag("metrics");
    macro_rules! simulate {
        ($proto:expr, $label:expr) => {{
            let proto = $proto;
            let mut sim = BeaconSim::new(&proto, topology, InitialState::Default, config);
            if let Some(plan) = chaos {
                sim = sim.with_chaos(plan);
            }
            let mut metrics = want_metrics.then(MetricsCollector::new);
            let r = sim.run_observed(quiet, horizon, &mut metrics.as_mut());
            let check_graph = static_graph.unwrap_or_else(|| r.final_graph.clone());
            let legit = proto.is_legitimate(&check_graph, &r.final_states);
            let mut out = report_text($label, &r, legit);
            if let Some(m) = &metrics {
                out.push_str("\n\nper-period beacon telemetry\n");
                out.push_str(&m.render_table());
            }
            Ok(out)
        }};
    }
    match protocol.as_str() {
        "smm" => simulate!(Smm::paper(ids), "SMM"),
        "smi" => simulate!(Smi::new(ids), "SMI"),
        "coloring" => simulate!(Coloring::new(ids), "SC (coloring)"),
        other => Err(format!("unknown protocol '{other}'")),
    }
}

/// `selfstab topology …`: inspect a generated topology.
pub fn topology(args: &Args) -> Result<String, String> {
    let name = args.required("topology")?.to_string();
    let n: usize = args.parse_or("n", 16)?;
    let seed: u64 = args.parse_or("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x109);
    let g = build_topology(&name, n, &mut rng)?;
    match args.str_or("format", "text") {
        "text" => {
            let degrees = selfstab_analysis::Histogram::of(g.nodes().map(|v| g.degree(v)));
            Ok(format!(
                "topology {name}: n={}, m={}, max degree {}, diameter {:?}\ndegree histogram: {}\ngraph6: {}",
                g.n(),
                g.m(),
                g.max_degree(),
                selfstab_graph::traversal::diameter(&g),
                degrees.render(),
                selfstab_graph::graph6::to_graph6(&g)
            ))
        }
        "graph6" => Ok(selfstab_graph::graph6::to_graph6(&g)),
        "dot" => Ok(dot::to_dot(&g, None, &[], &[])),
        other => Err(format!("unknown format '{other}'")),
    }
}

/// `selfstab verify …`
pub fn verify(args: &Args) -> Result<String, String> {
    let protocol = args.required("protocol")?.to_string();
    let max_n: usize = args.parse_or("max-n", 4)?;
    if max_n > 5 {
        return Err("--max-n above 5 is impractical (state-space explosion)".into());
    }
    let mut out = String::new();
    for n in 2..=max_n {
        let mut graphs = 0u64;
        let mut states = 0u64;
        let mut max_rounds = 0usize;
        for g in all_connected_graphs(n) {
            graphs += 1;
            let (ok, rounds, checked) = match protocol.as_str() {
                "smm" => {
                    let p = Smm::paper(Ids::identity(n));
                    let r = verify_all_initial_states(&g, &p, n + 1, |_, _| true);
                    (r.all_ok(), r.max_rounds, r.states_checked)
                }
                "smi" => {
                    let p = Smi::new(Ids::identity(n));
                    let r = verify_all_initial_states(&g, &p, n + 2, |_, _| true);
                    (r.all_ok(), r.max_rounds, r.states_checked)
                }
                "coloring" => {
                    let p = Coloring::new(Ids::identity(n));
                    let r = verify_all_initial_states(&g, &p, n + 2, |_, _| true);
                    (r.all_ok(), r.max_rounds, r.states_checked)
                }
                other => return Err(format!("unknown protocol '{other}'")),
            };
            if !ok {
                return Err(format!("verification FAILED on a graph with n={n}"));
            }
            states += checked;
            max_rounds = max_rounds.max(rounds);
        }
        out.push_str(&format!(
            "n={n}: {graphs} connected graphs, {states} initial states, max rounds {max_rounds} — all stabilized legitimately\n"
        ));
    }
    Ok(out.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn run_smm_text() {
        let out = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "grid",
            "--n",
            "16",
        ]))
        .unwrap();
        assert!(out.contains("stabilized"));
        assert!(out.contains("legitimate: true"));
        assert!(out.contains("maximal matching"));
    }

    #[test]
    fn run_smi_json() {
        let out = run(&args(&[
            "--protocol",
            "smi",
            "--topology",
            "cycle",
            "--n",
            "9",
            "--format",
            "json",
        ]))
        .unwrap();
        let v = Json::parse(&out).unwrap();
        assert_eq!(v.get("protocol").and_then(Json::as_str), Some("SMI"));
        assert_eq!(v.get("legitimate").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("states").and_then(Json::as_array).unwrap().len(), 9);
    }

    #[test]
    fn run_coloring_dot_and_defaults() {
        let out = run(&args(&[
            "--protocol",
            "coloring",
            "--topology",
            "petersen",
            "--n",
            "10",
            "--format",
            "dot",
        ]))
        .unwrap();
        assert!(out.starts_with("graph selfstab"));
        let out = run(&args(&[
            "--protocol",
            "coloring",
            "--topology",
            "path",
            "--n",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("proper coloring"));
    }

    #[test]
    fn run_sharded_matches_serial_output() {
        let base = &[
            "--protocol",
            "smm",
            "--topology",
            "grid",
            "--n",
            "25",
            "--format",
            "json",
        ];
        let serial = Json::parse(&run(&args(base)).unwrap()).unwrap();
        let mut sharded_args = base.to_vec();
        sharded_args.extend_from_slice(&["--shards", "4"]);
        let sharded = Json::parse(&run(&args(&sharded_args)).unwrap()).unwrap();
        assert_eq!(sharded.get("shards").and_then(Json::as_u64), Some(4));
        assert!(serial.get("shards").is_none());
        for field in [
            "rounds",
            "outcome",
            "legitimate",
            "result_summary",
            "states",
        ] {
            assert_eq!(
                serial.get(field).map(Json::to_string),
                sharded.get(field).map(Json::to_string),
                "field {field} must match"
            );
        }
    }

    #[test]
    fn run_sharded_text_reports_runtime_and_metrics_wire_columns() {
        let out = run(&args(&[
            "--protocol",
            "smi",
            "--topology",
            "cycle",
            "--n",
            "12",
            "--shards",
            "3",
            "--channel-cap",
            "8",
            "--metrics",
        ]))
        .unwrap();
        assert!(out.contains("runtime: 3 shards, channel cap 8"), "{out}");
        assert!(out.contains("cut edges"), "{out}");
        assert!(
            out.contains("| frames | suppressed | wire bytes | max chan depth |"),
            "{out}"
        );
    }

    #[test]
    fn run_schedule_flag_is_equivalent_and_validated() {
        let base = &[
            "--protocol",
            "smm",
            "--topology",
            "grid",
            "--n",
            "25",
            "--format",
            "json",
        ];
        let active = Json::parse(&run(&args(base)).unwrap()).unwrap();
        let mut full_args = base.to_vec();
        full_args.extend_from_slice(&["--schedule", "full"]);
        let full = Json::parse(&run(&args(&full_args)).unwrap()).unwrap();
        for field in ["rounds", "outcome", "moves_per_rule", "states"] {
            assert_eq!(
                active.get(field).map(Json::to_string),
                full.get(field).map(Json::to_string),
                "field {field} must not depend on the schedule"
            );
        }
        let err = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--n",
            "4",
            "--schedule",
            "lazy",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown schedule 'lazy'"), "{err}");
    }

    #[test]
    fn run_validates_shard_flags() {
        let err = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--n",
            "6",
            "--shards",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("--shards must be at least 1"), "{err}");
        let err = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--n",
            "6",
            "--shards",
            "2",
            "--channel-cap",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("--channel-cap must be at least 1"), "{err}");
        let err = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--n",
            "6",
            "--channel-cap",
            "4",
        ]))
        .unwrap_err();
        assert!(err.contains("--channel-cap requires --shards"), "{err}");
        let err = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--n",
            "6",
            "--shards",
            "x",
        ]))
        .unwrap_err();
        assert!(err.contains("--shards"), "{err}");
    }

    #[test]
    fn run_propose_policy_selects_counterexample() {
        // The paper's min-id R2 stabilizes C4 within n+1 rounds; the
        // clockwise ablation oscillates (cycle detected serially, round
        // limit on the sharded runtime).
        let out = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "cycle",
            "--n",
            "4",
            "--init",
            "default",
            "--max-rounds",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("stabilized"), "{out}");
        let out = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "cycle",
            "--n",
            "4",
            "--init",
            "default",
            "--propose",
            "clockwise",
            "--max-rounds",
            "12",
        ]))
        .unwrap();
        assert!(out.contains("oscillates"), "{out}");
        let out = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "cycle",
            "--n",
            "4",
            "--init",
            "default",
            "--propose",
            "clockwise",
            "--max-rounds",
            "12",
            "--shards",
            "4",
        ]))
        .unwrap();
        assert!(out.contains("round limit hit"), "{out}");
        assert!(run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--n",
            "4",
            "--propose",
            "xyz",
        ]))
        .is_err());
    }

    #[test]
    fn run_chaos_flags_require_shards_and_validate() {
        let err = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--n",
            "6",
            "--chaos",
            "drop=0.1",
        ]))
        .unwrap_err();
        assert!(err.contains("require --shards"), "{err}");
        let err = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--n",
            "6",
            "--shards",
            "2",
            "--chaos",
            "drop=x",
        ]))
        .unwrap_err();
        assert!(err.contains("--chaos"), "{err}");
        let err = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--n",
            "6",
            "--shards",
            "2",
            "--crash-shard",
            "1-5",
        ]))
        .unwrap_err();
        assert!(err.contains("--crash-shard"), "{err}");
        // Probabilities summing past 1 are rejected when parsing the spec;
        // out-of-range crash shards by the runtime up front.
        let err = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--n",
            "6",
            "--shards",
            "2",
            "--chaos",
            "drop=0.7,corrupt=0.5",
        ]))
        .unwrap_err();
        assert!(err.contains("sum to"), "{err}");
        let err = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--n",
            "6",
            "--shards",
            "2",
            "--crash-shard",
            "5@3",
        ]))
        .unwrap_err();
        assert!(err.contains("runtime"), "{err}");
        let err = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--n",
            "6",
            "--churn-events",
            "2",
        ]))
        .unwrap_err();
        assert!(err.contains("requires --churn-every"), "{err}");
        let err = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--n",
            "6",
            "--churn-every",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("--churn-every"), "{err}");
    }

    #[test]
    fn run_chaos_is_deterministic_and_reported() {
        let base = [
            "--protocol",
            "smm",
            "--topology",
            "grid",
            "--n",
            "36",
            "--shards",
            "4",
            "--chaos",
            "drop=0.2,dup=0.05,delay=1",
            "--seed",
            "7",
            "--format",
            "json",
        ];
        let a = run(&args(&base)).unwrap();
        let b = run(&args(&base)).unwrap();
        assert_eq!(a, b, "seeded chaos runs must be bit-identical");
        let v = Json::parse(&a).unwrap();
        assert_eq!(
            v.get("chaos").and_then(Json::as_str),
            Some("drop=0.2,dup=0.05,delay=1")
        );
        assert_eq!(v.get("legitimate").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn run_crash_shard_restarts_and_recovers() {
        let out = run(&args(&[
            "--protocol",
            "smi",
            "--topology",
            "grid",
            "--n",
            "25",
            "--shards",
            "3",
            "--crash-shard",
            "1@3",
            "--metrics",
        ]))
        .unwrap();
        assert!(out.contains("chaos: crash 1@3"), "{out}");
        assert!(out.contains("legitimate: true"), "{out}");
        assert!(out.contains("restarts |"), "{out}");
        assert!(out.contains("recovery: stabilized"), "{out}");
    }

    #[test]
    fn run_churn_serial_and_sharded_agree() {
        let base = [
            "--protocol",
            "smm",
            "--topology",
            "cycle",
            "--n",
            "24",
            "--churn-every",
            "4",
            "--churn-events",
            "2",
            "--churn-epochs",
            "2",
            "--seed",
            "3",
            "--format",
            "json",
        ];
        let serial = Json::parse(&run(&args(&base)).unwrap()).unwrap();
        let mut sharded_args = base.to_vec();
        sharded_args.extend_from_slice(&["--shards", "3"]);
        let sharded = Json::parse(&run(&args(&sharded_args)).unwrap()).unwrap();
        for field in ["rounds", "outcome", "legitimate", "states", "churn"] {
            assert_eq!(
                serial.get(field).map(Json::to_string),
                sharded.get(field).map(Json::to_string),
                "field {field} must match between serial and sharded churn"
            );
        }
        let events = serial
            .get("churn")
            .and_then(|c| c.get("events"))
            .and_then(Json::as_array)
            .unwrap();
        assert!(!events.is_empty(), "churn fired at least one event");
        assert_eq!(
            serial.get("legitimate").and_then(Json::as_bool),
            Some(true),
            "legitimate on the final mutated topology"
        );
        // Text format carries the churn note.
        let text_args = base[..base.len() - 2].to_vec();
        let out = run(&args(&text_args)).unwrap();
        assert!(out.contains("churn: "), "{out}");
        assert!(out.contains("final m="), "{out}");
    }

    #[test]
    fn run_rejects_unknowns() {
        assert!(run(&args(&["--protocol", "xyz", "--topology", "path"])).is_err());
        assert!(run(&args(&["--protocol", "smm", "--topology", "xyz"])).is_err());
        assert!(run(&args(&["--topology", "path"])).is_err());
        assert!(run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--format",
            "xyz"
        ]))
        .is_err());
        assert!(run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--init",
            "xyz"
        ]))
        .is_err());
        assert!(run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--ids",
            "xyz"
        ]))
        .is_err());
    }

    #[test]
    fn run_smm_metrics_prints_census_table() {
        let out = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "cycle",
            "--n",
            "8",
            "--metrics",
        ]))
        .unwrap();
        assert!(out.contains("per-round convergence metrics"), "{out}");
        assert!(
            out.contains("| round | privileged | evaluated | moves | M | A0 | A1 | PA | PM | PP | DANGLING | matched_pairs |"),
            "{out}"
        );
        assert!(out.contains("| 0 (init) |"), "{out}");
    }

    #[test]
    fn run_trace_out_emits_loadable_chrome_trace() {
        let path = std::env::temp_dir().join("selfstab_cli_trace_test.json");
        let out = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "cycle",
            "--n",
            "4",
            "--trace-out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("stabilized"));
        let text = std::fs::read_to_string(&path).unwrap();
        let v = Json::parse(&text).unwrap();
        let events = v.get("traceEvents").and_then(Json::as_array).unwrap();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.get("ph").is_some()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_json_metrics_field() {
        let out = run(&args(&[
            "--protocol",
            "smi",
            "--topology",
            "cycle",
            "--n",
            "9",
            "--format",
            "json",
            "--metrics",
        ]))
        .unwrap();
        let v = Json::parse(&out).unwrap();
        let metrics = v.get("metrics").expect("metrics field present");
        assert_eq!(
            metrics.get("outcome").and_then(Json::as_str),
            Some("stabilized")
        );
        assert!(!metrics
            .get("rounds")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());
        // Without the flag the field is absent.
        let out = run(&args(&[
            "--protocol",
            "smi",
            "--topology",
            "cycle",
            "--n",
            "9",
            "--format",
            "json",
        ]))
        .unwrap();
        assert!(Json::parse(&out).unwrap().get("metrics").is_none());
    }

    #[test]
    fn sim_metrics_prints_beacon_telemetry() {
        let out = sim(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "path",
            "--n",
            "6",
            "--metrics",
        ]))
        .unwrap();
        assert!(out.contains("per-period beacon telemetry"), "{out}");
        assert!(
            out.contains("| deliveries | losses | stale views |"),
            "{out}"
        );
    }

    #[test]
    fn sim_static_and_lossy() {
        let out = sim(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "grid",
            "--n",
            "16",
            "--loss",
            "0.1",
        ]))
        .unwrap();
        assert!(out.contains("quiesced: true"));
        assert!(out.contains("legitimate: true"));
    }

    #[test]
    fn sim_chaos_spec_drives_beacon_losses() {
        let out = sim(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "grid",
            "--n",
            "16",
            "--seed",
            "9",
            "--chaos",
            "drop=0.15,asym=0.1",
        ]))
        .unwrap();
        assert!(out.contains("quiesced: true"), "{out}");
        assert!(out.contains("legitimate: true"), "{out}");
        let losses: u64 = out
            .split("losses ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(losses > 0, "fate hashing must drop beacons: {out}");
        let err = sim(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "grid",
            "--n",
            "16",
            "--chaos",
            "byz=3",
        ]))
        .unwrap_err();
        assert!(err.contains("byz="), "{err}");
    }

    #[test]
    fn sim_mobile() {
        let out = sim(&args(&[
            "--protocol",
            "smi",
            "--topology",
            "unit-disk",
            "--n",
            "12",
            "--mobility",
            "0.02",
            "--seconds",
            "10",
        ]))
        .unwrap();
        assert!(out.contains("predicate held"));
    }

    #[test]
    fn verify_small() {
        let out = verify(&args(&["--protocol", "smi", "--max-n", "3"])).unwrap();
        assert!(out.contains("n=3: 4 connected graphs"));
        assert!(verify(&args(&["--protocol", "smm", "--max-n", "9"])).is_err());
    }

    #[test]
    fn cli_dispatch() {
        let mut buf = Vec::new();
        let code = crate::main_with(&["help".to_string()], &mut buf);
        assert_eq!(code, 0);
        assert!(String::from_utf8(buf).unwrap().contains("USAGE"));
        let mut buf = Vec::new();
        let code = crate::main_with(&["bogus".to_string()], &mut buf);
        assert_eq!(code, 2);
    }
}

#[cfg(test)]
mod topology_tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn topology_text_and_graph6() {
        let out = topology(&args(&["--topology", "cycle", "--n", "5"])).unwrap();
        assert!(out.contains("n=5, m=5"));
        assert!(out.contains("degree histogram: 2:5"));
        let g6 = topology(&args(&[
            "--topology",
            "cycle",
            "--n",
            "5",
            "--format",
            "graph6",
        ]))
        .unwrap();
        let parsed = selfstab_graph::graph6::parse(&g6).unwrap();
        assert_eq!(parsed.n(), 5);
        assert_eq!(parsed.m(), 5);
    }

    #[test]
    fn topology_dot_and_errors() {
        let out = topology(&args(&[
            "--topology",
            "star",
            "--n",
            "4",
            "--format",
            "dot",
        ]))
        .unwrap();
        assert!(out.starts_with("graph selfstab"));
        assert!(topology(&args(&["--topology", "nope", "--n", "4"])).is_err());
        assert!(topology(&args(&[
            "--topology",
            "star",
            "--n",
            "4",
            "--format",
            "nope"
        ]))
        .is_err());
    }
}

#[cfg(test)]
mod profile_and_crash_tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn profile_artifact_roundtrips_through_analyze() {
        let profile =
            std::env::temp_dir().join(format!("selfstab-cli-profile-{}.jsonl", std::process::id()));
        let path = profile.to_str().unwrap();
        let out = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "grid",
            "--n",
            "16",
            "--shards",
            "2",
            "--profile-out",
            path,
        ]))
        .unwrap();
        assert!(out.contains(&format!("profile: {path}")), "{out}");
        let mut buf = Vec::new();
        let code = crate::main_with(&["analyze".to_string(), path.to_string()], &mut buf);
        let report = String::from_utf8(buf).unwrap();
        std::fs::remove_file(&profile).ok();
        assert_eq!(code, 0, "{report}");
        assert!(report.contains("critical path"), "{report}");
        assert!(report.contains("straggler shard:"), "{report}");
        assert!(report.contains("PASS rounds"), "{report}");
        assert!(report.contains("PASS |M| monotone"), "{report}");
        assert!(report.contains("Manne"), "{report}");
    }

    #[test]
    fn analyze_exits_nonzero_on_unreadable_artifact() {
        let mut buf = Vec::new();
        let code = crate::main_with(
            &["analyze".to_string(), "/nonexistent/artifact.jsonl".into()],
            &mut buf,
        );
        assert_eq!(code, 2);
    }

    #[test]
    fn crash_at_serial_recovers_and_is_reported() {
        let out = run(&args(&[
            "--protocol",
            "smm",
            "--topology",
            "grid",
            "--n",
            "16",
            "--crash-at",
            "3:0.5",
        ]))
        .unwrap();
        assert!(out.contains("crash-at round 3"), "{out}");
        assert!(out.contains("legitimate: true"), "{out}");
    }

    #[test]
    fn crash_at_rejects_sharded_and_churned_runs() {
        let base = ["--protocol", "smm", "--topology", "path", "--n", "8"];
        let mut sharded = base.to_vec();
        sharded.extend_from_slice(&["--crash-at", "1:0.5", "--shards", "2"]);
        assert!(run(&args(&sharded)).unwrap_err().contains("--crash-shard"));
        let mut churned = base.to_vec();
        churned.extend_from_slice(&["--crash-at", "1:0.5", "--churn-every", "5"]);
        assert!(run(&args(&churned)).unwrap_err().contains("--churn-every"));
        let mut bad = base.to_vec();
        bad.extend_from_slice(&["--crash-at", "oops"]);
        assert!(run(&args(&bad)).unwrap_err().contains("--crash-at"));
    }
}

#[cfg(test)]
mod graph6_input_tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn run_on_user_supplied_graph6() {
        // Bw = the triangle K3.
        let out = run(&args(&["--protocol", "smm", "--graph6", "Bw"])).unwrap();
        assert!(out.contains("n=3, m=3"));
        assert!(out.contains("legitimate: true"));
        assert!(out.contains("graph6 input"));
    }

    #[test]
    fn bad_graph6_is_reported() {
        let err = run(&args(&["--protocol", "smm", "--graph6", "\u{1}"])).unwrap_err();
        assert!(err.contains("--graph6"));
    }
}
