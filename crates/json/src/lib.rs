//! Dependency-free JSON for the selfstab workspace.
//!
//! The build environment has no crates.io access, so instead of serde +
//! serde_json the workspace uses this small crate: a [`Json`] value model,
//! a strict parser ([`Json::parse`]), compact and pretty printers, and the
//! [`ToJson`] / [`FromJson`] conversion traits that replace
//! `#[derive(Serialize, Deserialize)]` with explicit impls.
//!
//! Design notes:
//!
//! * Numbers are kept as `i64` / `u64` / `f64` variants so 64-bit node IDs
//!   round-trip exactly (a plain `f64` model would corrupt them above
//!   2^53).
//! * Non-finite floats print as `null` (matching serde_json) and parse
//!   back as NaN via [`FromJson`] for `f64`.
//! * Object fields keep insertion order, so output is deterministic.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A negative integer (parser: any integer with a leading `-`).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A number with a fraction or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; fields keep insertion order.
    Object(Vec<(String, Json)>),
}

/// A parse or conversion failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// Build an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, JsonError>;

impl Json {
    /// Build an object from field pairs (keeps the given order).
    pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup that errors with the key name — the `FromJson`
    /// impl workhorse.
    pub fn field(&self, key: &str) -> Result<&Json> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// Typed field lookup: `field` + [`FromJson`], with the key name
    /// prepended to any shape error (so a deep record mismatch says *which*
    /// field, not just "expected u64").
    pub fn parse_field<T: FromJson>(&self, key: &str) -> Result<T> {
        T::from_json(self.field(key)?)
            .map_err(|e| JsonError::new(format!("field `{key}`: {}", e.message)))
    }

    /// `true` iff the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(n) => Some(*n),
            Json::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::I64(n) => Some(*n as f64),
            Json::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parse a JSON document (strict: rejects trailing input).
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Render with 2-space indentation. (Compact rendering is the
    /// [`Display`](fmt::Display) impl, i.e. plain `.to_string()`.)
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    // `{:?}` guarantees a round-trippable rendering and
                    // keeps a distinguishing `.0` on integral floats.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Four hex digits; leaves `pos` just past them.
    fn hex4(&mut self) -> Result<u32> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if let Ok(i) = i64::try_from(n).map(|i| -i) {
                        return Ok(Json::I64(i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError::new(format!("invalid number `{text}`")))
    }
}

/// Conversion into a [`Json`] value (replaces `serde::Serialize`).
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value (replaces `serde::Deserialize`).
pub trait FromJson: Sized {
    /// Reconstruct a value, with a descriptive error on shape mismatch.
    fn from_json(value: &Json) -> Result<Self>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Self> {
        Ok(value.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self> {
        value
            .as_bool()
            .ok_or_else(|| JsonError::new("expected bool"))
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<Self> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| JsonError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| JsonError::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v >= 0 { Json::U64(v as u64) } else { Json::I64(v) }
            }
        }
        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<Self> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| JsonError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| JsonError::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        if self.is_finite() {
            Json::F64(*self)
        } else {
            Json::Null
        }
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self> {
        if value.is_null() {
            // Non-finite floats serialize as null; NaN is the only
            // self-describing reconstruction.
            return Ok(f64::NAN);
        }
        value
            .as_f64()
            .ok_or_else(|| JsonError::new("expected number"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_json(value).map(Some)
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self> {
        value
            .as_array()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &Json) -> Result<Self> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::new("expected 2-element array")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in [
            "null", "true", "false", "0", "-7", "42.5", "\"hi\"", "[]", "{}",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text, "{text}");
        }
    }

    #[test]
    fn big_u64_is_exact() {
        let n = u64::MAX - 3;
        let v = Json::parse(&n.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(n));
        assert_eq!(u64::from_json(&v).unwrap(), n);
    }

    #[test]
    fn nested_structure_and_pretty() {
        let v = Json::obj([
            ("n", 3u32.to_json()),
            ("edges", vec![(0u32, 1u32), (1, 2)].to_json()),
            ("name", "C3".to_json()),
        ]);
        let compact = v.to_string();
        assert_eq!(compact, r#"{"n":3,"edges":[[0,1],[1,2]],"name":"C3"}"#);
        let back = Json::parse(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"edges\": ["));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let original = "line\nquote\"back\\slash\ttab\u{1F600}é";
        let rendered = original.to_json().to_string();
        let back = String::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, original);
        // \u escapes, including a surrogate pair.
        let v = Json::parse(r#""A😀""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{1F600}"));
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(f64::NAN.to_json(), Json::Null);
        assert!(f64::from_json(&Json::Null).unwrap().is_nan());
        assert_eq!(f64::from_json(&Json::F64(2.5)).unwrap(), 2.5);
    }

    #[test]
    fn parse_field_names_the_offending_key() {
        let v = Json::obj([("n", "oops".to_json())]);
        assert_eq!(v.parse_field::<String>("n").unwrap(), "oops".to_string());
        let err = v.parse_field::<u64>("n").unwrap_err();
        assert!(err.to_string().contains("field `n`"), "{err}");
        assert!(err.to_string().contains("expected u64"), "{err}");
        let err = v.parse_field::<u64>("absent").unwrap_err();
        assert!(err.to_string().contains("missing field `absent`"), "{err}");
    }

    #[test]
    fn parse_field_round_trips_escaped_protocol_strings() {
        // Protocol messages carry client-controlled strings (tags, error
        // text) in object fields; a full render → parse → parse_field
        // cycle must preserve every escape class, and keys themselves may
        // need escaping.
        let hostile = "tag with \"quotes\", back\\slash,\nnewline, \r\t\u{0} control, \u{1F600}é";
        let msg = Json::obj([
            ("op", "mutate".to_json()),
            ("tag", hostile.to_json()),
            ("weird \"key\"\n", 7u64.to_json()),
        ]);
        let line = msg.to_string();
        assert!(
            !line.contains('\n'),
            "a wire message stays one line: {line:?}"
        );
        let back = Json::parse(&line).unwrap();
        assert_eq!(back.parse_field::<String>("op").unwrap(), "mutate");
        assert_eq!(back.parse_field::<String>("tag").unwrap(), hostile);
        assert_eq!(back.parse_field::<u64>("weird \"key\"\n").unwrap(), 7);
        // Idempotent: re-render the parsed value and parse again.
        assert_eq!(Json::parse(&back.to_string()).unwrap(), back);
    }

    #[test]
    fn option_and_field_access() {
        let v = Json::obj([("a", None::<u32>.to_json()), ("b", Some(9u32).to_json())]);
        assert_eq!(
            Option::<u32>::from_json(v.field("a").unwrap()).unwrap(),
            None
        );
        assert_eq!(
            Option::<u32>::from_json(v.field("b").unwrap()).unwrap(),
            Some(9)
        );
        let err = v.field("missing").unwrap_err();
        assert!(err.to_string().contains("missing field `missing`"));
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"unterminated",
            "[01x]",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(
            Json::parse("-9007199254740993").unwrap().as_i64(),
            Some(-9007199254740993)
        );
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("-2.5e-1").unwrap().as_f64(), Some(-0.25));
    }
}
