//! E12 bench — engine throughput: serial vs chunked-parallel synchronous
//! executor at large n (results are bit-identical; this measures speed
//! only).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use selfstab_core::Smi;
use selfstab_engine::par::ParSyncExecutor;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Ids};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_throughput");
    group.sample_size(10);
    for side in [64usize, 256] {
        let g = generators::grid(side, side);
        let n = g.n();
        let smi = Smi::new(Ids::identity(n));
        group.throughput(Throughput::Elements(n as u64));
        let serial = SyncExecutor::new(&g, &smi);
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, &n| {
            b.iter(|| {
                let run = serial.run(InitialState::Random { seed: 7 }, n + 2);
                assert!(run.stabilized());
                black_box(run.rounds())
            });
        });
        let par = ParSyncExecutor::new(&g, &smi);
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, &n| {
            b.iter(|| {
                let run = par.run(InitialState::Random { seed: 7 }, n + 2);
                assert!(run.stabilized());
                black_box(run.rounds())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
