//! E6 bench — native SMM vs the synchronized Hsu–Huang baseline on the same
//! inputs (the "not as fast" claim, in wall-clock form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_core::hsu_huang::HsuHuang;
use selfstab_core::smm::Smm;
use selfstab_core::transformer::{run_synchronized, Refinement};
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Ids};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_baseline_vs_smm");
    for n in [64usize, 256] {
        let g = generators::grid((n as f64).sqrt() as usize, (n as f64).sqrt() as usize);
        let n_actual = g.n();
        let smm = Smm::paper(Ids::identity(n_actual));
        let exec = SyncExecutor::new(&g, &smm);
        group.bench_with_input(BenchmarkId::new("smm", n_actual), &n_actual, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let run = exec.run(InitialState::Random { seed }, n + 1);
                assert!(run.stabilized());
                black_box(run.rounds())
            });
        });
        let hh = HsuHuang::classic(n_actual);
        group.bench_with_input(
            BenchmarkId::new("hh-rand-priority", n_actual),
            &n_actual,
            |b, &n| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    let run = run_synchronized(
                        &g,
                        &hh,
                        InitialState::Random { seed },
                        Refinement::RandomizedPriority { seed },
                        100 * n,
                    );
                    assert!(run.stabilized());
                    black_box(run.rounds())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hh-det-mutex", n_actual),
            &n_actual,
            |b, &n| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    let run = run_synchronized(
                        &g,
                        &hh,
                        InitialState::Random { seed },
                        Refinement::DeterministicLocalMutex,
                        100 * n,
                    );
                    assert!(run.stabilized());
                    black_box(run.rounds())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
