//! E8 bench — discrete-event beacon simulation throughput (events, timers,
//! discovery) until SMM quiesces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_adhoc::{BeaconConfig, BeaconSim, Topology};
use selfstab_core::smm::Smm;
use selfstab_engine::protocol::InitialState;
use selfstab_graph::{generators, Ids};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_beacon_sim");
    group.sample_size(20);
    for n in [16usize, 64, 144] {
        let side = (n as f64).sqrt() as usize;
        let g = generators::grid(side, side);
        let n_actual = g.n();
        let smm = Smm::paper(Ids::identity(n_actual));
        group.bench_with_input(BenchmarkId::new("grid", n_actual), &n_actual, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let cfg = BeaconConfig {
                    seed,
                    ..BeaconConfig::default()
                }
                .with_jitter(0.05);
                let report = BeaconSim::new(
                    &smm,
                    Topology::Static(g.clone()),
                    InitialState::Random { seed },
                    cfg,
                )
                .run(5, 3_600_000_000);
                assert!(report.quiesced);
                black_box(report.deliveries)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
