//! E7 runtime bench — executor throughput: serial vs chunked-parallel vs
//! the sharded mailbox runtime at 1/2/4/8 shards.
//!
//! All three executors are round-for-round identical (asserted in the
//! bodies), so this measures pure execution cost: the runtime pays per-round
//! barriers plus beacon serialization across the partition cut in exchange
//! for parallel guard evaluation. Besides the criterion output, each
//! configuration emits one machine-readable `BENCH {...}` JSON line on
//! stdout for trend tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use selfstab_core::smm::Smm;
use selfstab_engine::par::ParSyncExecutor;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Graph, Ids};
use selfstab_runtime::RuntimeExecutor;
use std::hint::black_box;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn init() -> InitialState<selfstab_core::smm::Pointer> {
    InitialState::Random { seed: 7 }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_runtime_throughput");
    group.sample_size(10);
    let g = generators::grid(96, 96);
    let n = g.n();
    let smm = Smm::paper(Ids::identity(n));
    group.throughput(Throughput::Elements(n as u64));

    let serial = SyncExecutor::new(&g, &smm);
    group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, &n| {
        b.iter(|| {
            let run = serial.run(init(), n + 2);
            assert!(run.stabilized());
            black_box(run.rounds())
        });
    });

    let par = ParSyncExecutor::new(&g, &smm);
    group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, &n| {
        b.iter(|| {
            let run = par.run(init(), n + 2);
            assert!(run.stabilized());
            black_box(run.rounds())
        });
    });

    let reference_rounds = serial.run(init(), n + 2).rounds();
    for shards in SHARD_COUNTS {
        let rt = RuntimeExecutor::new(&g, &smm, shards);
        let label = format!("runtime-{shards}shard");
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
            b.iter(|| {
                let run = rt.run(init(), n + 2).expect("sharded run failed");
                assert_eq!(run.rounds(), reference_rounds);
                black_box(run.rounds())
            });
        });
    }
    group.finish();

    emit_bench_points(&g, &smm);
}

/// Print one `BENCH {...}` JSON line per executor configuration (skipped in
/// `cargo test` smoke mode, where cargo passes `--test`).
fn emit_bench_points(g: &Graph, smm: &Smm) {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let n = g.n();
    let point = |executor: &str, shards: usize, run_once: &dyn Fn() -> usize| {
        // One warmup, then the mean of three timed runs.
        let rounds = run_once();
        let start = Instant::now();
        for _ in 0..3 {
            black_box(run_once());
        }
        let secs = start.elapsed().as_secs_f64() / 3.0;
        let rate = (n * rounds) as f64 / secs.max(f64::MIN_POSITIVE);
        println!(
            "BENCH {{\"bench\":\"e7_runtime_throughput\",\"executor\":\"{executor}\",\
             \"shards\":{shards},\"n\":{n},\"rounds\":{rounds},\"secs\":{secs:.6},\
             \"node_rounds_per_sec\":{rate:.0}}}"
        );
    };
    point("serial", 0, &|| serial_rounds(g, smm, n));
    point("parallel", 0, &|| {
        ParSyncExecutor::new(g, smm).run(init(), n + 2).rounds()
    });
    for shards in SHARD_COUNTS {
        point("runtime", shards, &|| {
            RuntimeExecutor::new(g, smm, shards)
                .run(init(), n + 2)
                .expect("sharded run failed")
                .rounds()
        });
    }
}

fn serial_rounds(g: &Graph, smm: &Smm, n: usize) -> usize {
    SyncExecutor::new(g, smm).run(init(), n + 2).rounds()
}

criterion_group!(benches, bench);
criterion_main!(benches);
