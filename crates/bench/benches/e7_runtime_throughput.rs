//! E7 runtime bench — executor throughput: serial vs chunked-parallel vs
//! the sharded mailbox runtime at 1/2/4/8 shards.
//!
//! All three executors are round-for-round identical (asserted in the
//! bodies), so this measures pure execution cost: the runtime pays per-round
//! barriers plus beacon serialization across the partition cut in exchange
//! for parallel guard evaluation. Besides the criterion output, each
//! configuration emits one machine-readable `BENCH {...}` JSON line on
//! stdout for trend tracking — the same schema-versioned record the
//! `selfstab bench` observatory writes into `BENCH_<pr>.json`, produced by
//! the same [`measure_record`] runner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use selfstab_bench::observatory::{measure_record, ExecKind, SCHEMA, SHARD_COUNTS};
use selfstab_core::smm::Smm;
use selfstab_engine::active::Schedule;
use selfstab_engine::par::ParSyncExecutor;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Graph, Ids};
use selfstab_json::ToJson;
use selfstab_runtime::RuntimeExecutor;
use std::hint::black_box;

fn init() -> InitialState<selfstab_core::smm::Pointer> {
    InitialState::Random { seed: 7 }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_runtime_throughput");
    group.sample_size(10);
    let g = generators::grid(96, 96);
    let n = g.n();
    let smm = Smm::paper(Ids::identity(n));
    group.throughput(Throughput::Elements(n as u64));

    let serial = SyncExecutor::new(&g, &smm);
    group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, &n| {
        b.iter(|| {
            let run = serial.run(init(), n + 2);
            assert!(run.stabilized());
            black_box(run.rounds())
        });
    });

    let par = ParSyncExecutor::new(&g, &smm);
    group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, &n| {
        b.iter(|| {
            let run = par.run(init(), n + 2);
            assert!(run.stabilized());
            black_box(run.rounds())
        });
    });

    let reference_rounds = serial.run(init(), n + 2).rounds();
    for shards in SHARD_COUNTS {
        let rt = RuntimeExecutor::new(&g, &smm, shards);
        let label = format!("runtime-{shards}shard");
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
            b.iter(|| {
                let run = rt.run(init(), n + 2).expect("sharded run failed");
                assert_eq!(run.rounds(), reference_rounds);
                black_box(run.rounds())
            });
        });
    }
    group.finish();

    emit_bench_points(&g, &smm);
}

/// Print one `BENCH {...}` JSON line per executor configuration (skipped in
/// `cargo test` smoke mode, where cargo passes `--test`). Each line is a
/// [`selfstab_bench::observatory::BenchRecord`] in the `BENCH_<pr>.json`
/// schema, so e7's trend lines and `selfstab bench` artifacts are the one
/// bench record format in the repo.
fn emit_bench_points(g: &Graph, smm: &Smm) {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    println!("BENCH-SCHEMA {SCHEMA}");
    let mut execs = vec![ExecKind::Serial, ExecKind::Parallel];
    execs.extend(SHARD_COUNTS.map(ExecKind::Runtime));
    for exec in execs {
        let record = measure_record(
            g,
            smm,
            "smm",
            "grid",
            exec,
            Schedule::Active,
            7,
            g.n() + 2,
            3,
        );
        println!("BENCH {}", record.to_json());
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
