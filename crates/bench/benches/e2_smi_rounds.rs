//! E2 bench — wall-clock cost of stabilizing SMI, including the adversarial
//! increasing-ID path (the Theorem 2 worst case).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_bench::Suite;
use selfstab_core::Smi;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Ids};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = Suite::default();
    let mut group = c.benchmark_group("e2_smi_stabilize");
    for n in [64usize, 256, 1024] {
        for inst in suite.instances(n) {
            if inst.label != "cycle" && inst.label != "gnp" {
                continue;
            }
            let smi = Smi::new(inst.ids.clone());
            let exec = SyncExecutor::new(&inst.graph, &smi);
            group.bench_with_input(
                BenchmarkId::new(inst.label.clone(), inst.graph.n()),
                &inst.graph.n(),
                |b, &n_actual| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed = seed.wrapping_add(1);
                        let run = exec.run(InitialState::Random { seed }, n_actual + 2);
                        assert!(run.stabilized());
                        black_box(run.rounds())
                    });
                },
            );
        }
        // Adversarial cascade: path with increasing IDs from all-out.
        let g = generators::path(n);
        let smi = Smi::new(Ids::identity(n));
        let exec = SyncExecutor::new(&g, &smi);
        group.bench_with_input(BenchmarkId::new("path-worstcase", n), &n, |b, &n| {
            b.iter(|| {
                let run = exec.run(InitialState::Default, n + 2);
                assert!(run.stabilized());
                black_box(run.rounds())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
