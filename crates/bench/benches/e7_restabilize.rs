//! E7 bench — recovery cost: re-stabilizing after a small fault burst vs
//! stabilizing from scratch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_core::smm::Smm;
use selfstab_engine::faults::corrupt_and_recover;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Ids};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_restabilize");
    let g = generators::grid(16, 16);
    let n = g.n();
    let smm = Smm::paper(Ids::identity(n));
    let exec = SyncExecutor::new(&g, &smm);

    group.bench_function("from-scratch", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let run = exec.run(InitialState::Random { seed }, n + 1);
            assert!(run.stabilized());
            black_box(run.rounds())
        });
    });
    for k in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("corrupt-and-recover", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let (_, recovery) =
                    corrupt_and_recover(&g, &smm, k, seed, n + 1).expect("must stabilize");
                assert!(recovery.run.stabilized());
                black_box(recovery.run.rounds())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
