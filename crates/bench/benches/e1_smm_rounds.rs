//! E1 bench — wall-clock cost of stabilizing SMM from a random state, per
//! topology and size (the code path behind the Theorem 1 table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_bench::Suite;
use selfstab_core::smm::Smm;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = Suite::default();
    let mut group = c.benchmark_group("e1_smm_stabilize");
    for n in [64usize, 256, 1024] {
        for inst in suite.instances(n) {
            // Two representative topologies per size keep the bench short;
            // the harness covers the full grid.
            if inst.label != "path" && inst.label != "unit-disk" {
                continue;
            }
            let smm = Smm::paper(inst.ids.clone());
            let exec = SyncExecutor::new(&inst.graph, &smm);
            group.bench_with_input(
                BenchmarkId::new(inst.label.clone(), inst.graph.n()),
                &inst.graph.n(),
                |b, &n_actual| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed = seed.wrapping_add(1);
                        let run = exec.run(InitialState::Random { seed }, n_actual + 1);
                        assert!(run.stabilized());
                        black_box(run.rounds())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
