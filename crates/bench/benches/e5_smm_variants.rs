//! E5 bench — ablation of the R2 selection policy: cost of stabilization
//! under min-ID vs the alternatives (the oscillating clockwise policy is
//! timed over a fixed 64-round window since it never finishes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_core::smm::{SelectPolicy, Smm};
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Ids};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_policy_ablation");
    let n = 256;
    let g = generators::cycle(n);
    for (name, policy) in [
        ("min-id", SelectPolicy::MinId),
        ("max-id", SelectPolicy::MaxId),
        ("first-index", SelectPolicy::FirstIndex),
        ("hashed", SelectPolicy::Hashed),
    ] {
        let smm = Smm::with_policies(Ids::identity(n), SelectPolicy::MinId, policy);
        let exec = SyncExecutor::new(&g, &smm);
        group.bench_function(BenchmarkId::new("stabilize", name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let run = exec.run(InitialState::Random { seed }, n + 1);
                assert!(run.stabilized());
                black_box(run.rounds())
            });
        });
    }
    // The counterexample policy: time a fixed 64-round oscillation window.
    let smm = Smm::with_policies(
        Ids::identity(n),
        SelectPolicy::MinId,
        SelectPolicy::Clockwise,
    );
    let exec = SyncExecutor::new(&g, &smm);
    group.bench_function(BenchmarkId::new("oscillate-64-rounds", "clockwise"), |b| {
        b.iter(|| {
            let run = exec.run(InitialState::Default, 64);
            black_box(run.rounds())
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
