//! Property tests for the bench-artifact schema: any artifact the types
//! can express (with finite floats — non-finite medians round-trip to NaN
//! by design and NaN breaks equality) survives
//! serialize → parse → serialize unchanged, and the comparator is exact on
//! self-comparison.
//!
//! Strategies are built from the vendored proptest subset: integer ranges
//! mapped into floats/labels (no regex or float-range strategies there).

use proptest::prelude::*;
use selfstab_analysis::gate::{MetricPoint, NoiseGate, Verdict};
use selfstab_bench::observatory::{
    compare, BenchArtifact, BenchRecord, MachineMeta, WireSummary, SCHEMA,
};
use selfstab_json::ToJson;

/// A finite, exactly round-trippable float (f64 serializes via `{:?}`).
fn arb_f64() -> impl Strategy<Value = f64> {
    (0u64..1_000_000_000_000).prop_map(|x| x as f64 / 1024.0)
}

fn arb_point() -> impl Strategy<Value = MetricPoint> {
    (arb_f64(), arb_f64()).prop_map(|(median, iqr)| MetricPoint { median, iqr })
}

fn pick(choices: &'static [&'static str]) -> impl Strategy<Value = String> {
    (0..choices.len()).prop_map(|i| choices[i].to_string())
}

fn arb_wire() -> impl Strategy<Value = Option<WireSummary>> {
    (
        (any::<bool>(), arb_f64(), 0u64..1_000_000, 0u64..1_000_000),
        (0u64..10_000, arb_f64(), arb_f64()),
        (0usize..9, collection::vec(0u64..1_000_000u64, 1..8)),
    )
        .prop_map(
            |((present, bytes, frames, suppressed), (peak, skew, barrier), (straggler, lanes))| {
                present.then(|| WireSummary {
                    bytes_per_round: bytes,
                    frames,
                    frames_suppressed: suppressed,
                    peak_inbox: peak,
                    mean_skew: skew,
                    barrier_share: barrier,
                    // 0 stands in for "no straggler recorded".
                    straggler: straggler.checked_sub(1),
                    lane_inbox: lanes.iter().map(|&x| x / 2).collect(),
                    lane_micros: lanes,
                })
            },
        )
}

fn arb_record() -> impl Strategy<Value = BenchRecord> {
    (
        (
            pick(&["smm", "smi", "hsu-huang"]),
            pick(&["path", "star", "unit-disk", "grid"]),
            pick(&["serial", "parallel", "runtime@2", "runtime@8"]),
            pick(&["full", "active"]),
        ),
        (1usize..1_000_000, 0usize..2_000_000, 1usize..10),
        (0usize..5_000, any::<bool>(), 0u64..u64::MAX / 2),
        ((arb_point(), arb_point()), arb_wire()),
    )
        .prop_map(
            |(
                (protocol, topology, exec, schedule),
                (n, m, reps),
                (rounds, stabilized, guard_evals),
                ((rounds_per_sec, guard_evals_per_sec), wire),
            )| BenchRecord {
                protocol,
                topology,
                exec,
                schedule,
                n,
                m,
                reps,
                rounds,
                stabilized,
                guard_evals,
                rounds_per_sec,
                guard_evals_per_sec,
                wire,
            },
        )
}

fn arb_artifact() -> impl Strategy<Value = BenchArtifact> {
    (
        (0u64..1_000_000, pick(&["quick", "default"]), any::<u64>()),
        (1usize..256, 0u32..100, 0u32..100),
        collection::vec(arb_record(), 0..12),
    )
        .prop_map(
            |((pr, tier, master_seed), (cpus, major, minor), records)| BenchArtifact {
                schema: SCHEMA.to_string(),
                pr: pr.to_string(),
                tier,
                master_seed,
                machine: MachineMeta {
                    os: std::env::consts::OS.to_string(),
                    arch: std::env::consts::ARCH.to_string(),
                    cpus,
                    crate_version: format!("{major}.{minor}.0"),
                },
                records,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn artifact_roundtrips_through_json(artifact in arb_artifact()) {
        let text = artifact.to_json().to_string_pretty();
        let back = BenchArtifact::parse(&text).unwrap();
        prop_assert_eq!(&back, &artifact);
        // Serialization is canonical: a second trip is byte-identical.
        prop_assert_eq!(back.to_json().to_string_pretty(), text);
    }

    #[test]
    fn self_compare_never_flags(artifact in arb_artifact()) {
        // Cell ids may collide across random records; dedup to a valid matrix.
        let mut seen = std::collections::HashSet::new();
        let mut unique = artifact.clone();
        unique.records.retain(|r| seen.insert(r.cell_id()));
        let report = compare(&unique, &unique, &NoiseGate::default()).unwrap();
        prop_assert_eq!(report.count(Verdict::Regressed), 0);
        prop_assert_eq!(report.count(Verdict::Improved), 0);
    }
}
