//! The standing performance observatory behind `selfstab bench`.
//!
//! A pinned measurement matrix — protocol × topology × executor ×
//! schedule — runs over [`Suite`]'s seeded grid and serializes one
//! schema-versioned artifact (`BENCH_<pr>.json` at the repo root) per
//! invocation. Every quantity comes from plumbing that already exists:
//! guard-evaluation counts and round totals from the [`MetricsCollector`],
//! wire bytes / suppressed frames / inbox depth from the sharded runtime's
//! [`RuntimeCounters`], and straggler / barrier-share summaries from the
//! per-lane [`ShardProfile`]s folded through [`SkewAccumulator`] — the
//! observatory adds **no instrumentation to the hot path**.
//!
//! Timing honesty: per cell we do exactly one *observed* run (deterministic
//! counters; never timed — observers pay clock and journal costs) and
//! `reps` *unobserved* runs from the identical initial state, timing only
//! the executor's `run`. Repetitions therefore measure scheduling noise,
//! not workload variation, and their median/IQR (via
//! [`selfstab_analysis::stats::Summary`]) is what the noise-aware
//! comparator in [`compare`] gates on.
//!
//! [`RuntimeCounters`]: selfstab_engine::obs::RuntimeCounters
//! [`ShardProfile`]: selfstab_engine::obs::ShardProfile

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_analysis::gate::{Direction, MetricPoint, NoiseGate, Verdict};
use selfstab_analysis::{SkewAccumulator, Summary};
use selfstab_core::hsu_huang::HsuHuang;
use selfstab_core::smi::Smi;
use selfstab_core::smm::Smm;
use selfstab_engine::active::Schedule;
use selfstab_engine::obs::MetricsCollector;
use selfstab_engine::par::ParSyncExecutor;
use selfstab_engine::protocol::{InitialState, Protocol, WireState};
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Graph, Ids};
use selfstab_json::{FromJson, Json, JsonError, ToJson};
use selfstab_runtime::RuntimeExecutor;

use crate::suite::Suite;

/// Artifact schema identifier; bump on any incompatible record change.
pub const SCHEMA: &str = "selfstab-bench/v1";

/// Shard counts the runtime executor is measured at.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Measurement tier: how big the instances are and how many repetitions
/// each cell gets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// CI tier: small instances, one repetition, full matrix in seconds.
    Quick,
    /// Trajectory tier: the 10⁵-node cells from E18/E21, three timed
    /// repetitions per cell.
    Default,
}

impl Tier {
    /// Instance size the tier pins.
    pub fn n(self) -> usize {
        match self {
            Tier::Quick => 256,
            Tier::Default => 100_000,
        }
    }

    /// Timed repetitions per cell.
    pub fn reps(self) -> usize {
        match self {
            Tier::Quick => 1,
            Tier::Default => 3,
        }
    }

    /// Tier name as stored in the artifact header.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Quick => "quick",
            Tier::Default => "default",
        }
    }
}

/// Protocol axis of the matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolKind {
    /// The paper's maximal-matching protocol (min-ID policies).
    Smm,
    /// The paper's maximal-independent-set protocol.
    Smi,
    /// The Hsu–Huang matching baseline (index policies).
    HsuHuang,
}

impl ProtocolKind {
    /// All protocols in matrix order.
    pub const ALL: [ProtocolKind; 3] =
        [ProtocolKind::Smm, ProtocolKind::Smi, ProtocolKind::HsuHuang];

    /// Label used in cell ids.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Smm => "smm",
            ProtocolKind::Smi => "smi",
            ProtocolKind::HsuHuang => "hsu-huang",
        }
    }
}

/// Topology axis of the matrix: the two structured extremes plus the
/// paper's ad hoc model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// Path: maximum diameter, minimum degree.
    Path,
    /// Star: diameter 2, one hub touching every edge.
    Star,
    /// Connected random geometric graph (the ad hoc model).
    UnitDisk,
}

impl TopologyKind {
    /// All topologies in matrix order.
    pub const ALL: [TopologyKind; 3] = [
        TopologyKind::Path,
        TopologyKind::Star,
        TopologyKind::UnitDisk,
    ];

    /// Label used in cell ids (matches `Suite` instance labels).
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Path => "path",
            TopologyKind::Star => "star",
            TopologyKind::UnitDisk => "unit-disk",
        }
    }

    /// Build the topology at size `n` on `Suite`'s seeded grid.
    pub fn build(self, n: usize, suite: &Suite) -> Graph {
        match self {
            TopologyKind::Path => generators::path(n),
            TopologyKind::Star => generators::star(n),
            TopologyKind::UnitDisk => {
                let mut rng = StdRng::seed_from_u64(suite.rep_seed(self.name(), n, 0));
                // Same radius rule as `Suite::instances`: keeps the random
                // geometric graph connected with few rejections.
                let radius = (2.2 * (n as f64).ln() / n as f64).sqrt().min(1.0);
                generators::random_geometric_connected(n, radius, &mut rng)
            }
        }
    }
}

/// Executor axis of the matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecKind {
    /// Serial synchronous executor.
    Serial,
    /// Chunked fork–join parallel executor.
    Parallel,
    /// Sharded mailbox runtime at the given shard count.
    Runtime(usize),
}

impl ExecKind {
    /// All executor variants in matrix order.
    pub fn all() -> Vec<ExecKind> {
        let mut v = vec![ExecKind::Serial, ExecKind::Parallel];
        v.extend(SHARD_COUNTS.iter().map(|&k| ExecKind::Runtime(k)));
        v
    }

    /// Label used in cell ids, e.g. `runtime@4`.
    pub fn name(self) -> String {
        match self {
            ExecKind::Serial => "serial".into(),
            ExecKind::Parallel => "parallel".into(),
            ExecKind::Runtime(k) => format!("runtime@{k}"),
        }
    }
}

/// Wire and shard-balance quantities a sharded-runtime cell carries
/// (absent for serial/parallel cells, which have no wire).
#[derive(Clone, Debug, PartialEq)]
pub struct WireSummary {
    /// Mean encoded boundary-beacon bytes per round.
    pub bytes_per_round: f64,
    /// Total boundary frames sent.
    pub frames: u64,
    /// Boundary beacons elided by delta suppression (0 under `full`).
    pub frames_suppressed: u64,
    /// Deepest any cross-shard channel ever got.
    pub peak_inbox: u64,
    /// Mean per-round slowest-lane / mean-lane time ratio (1.0 = balanced).
    pub mean_skew: f64,
    /// Mean fraction of summed lane time spent blocked on the barrier.
    pub barrier_share: f64,
    /// Lane that was slowest most often.
    pub straggler: Option<usize>,
    /// Per-lane summed round time, µs (index = lane). Kept so `selfstab
    /// analyze` can re-feed a [`SkewAccumulator`] offline.
    pub lane_micros: Vec<u64>,
    /// Per-lane inbox high-water mark (index = lane).
    pub lane_inbox: Vec<u64>,
}

impl ToJson for WireSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("bytes_per_round", self.bytes_per_round.to_json()),
            ("frames", self.frames.to_json()),
            ("frames_suppressed", self.frames_suppressed.to_json()),
            ("peak_inbox", self.peak_inbox.to_json()),
            ("mean_skew", self.mean_skew.to_json()),
            ("barrier_share", self.barrier_share.to_json()),
            ("straggler", self.straggler.to_json()),
            ("lane_micros", self.lane_micros.to_json()),
            ("lane_inbox", self.lane_inbox.to_json()),
        ])
    }
}

impl FromJson for WireSummary {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(WireSummary {
            bytes_per_round: value.parse_field("bytes_per_round")?,
            frames: value.parse_field("frames")?,
            frames_suppressed: value.parse_field("frames_suppressed")?,
            peak_inbox: value.parse_field("peak_inbox")?,
            mean_skew: value.parse_field("mean_skew")?,
            barrier_share: value.parse_field("barrier_share")?,
            straggler: value.parse_field("straggler")?,
            lane_micros: value.parse_field("lane_micros")?,
            lane_inbox: value.parse_field("lane_inbox")?,
        })
    }
}

/// One matrix cell's record: identity, deterministic counters, and the
/// timed medians/IQRs the comparator gates on.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Protocol label (`smm` / `smi` / `hsu-huang`).
    pub protocol: String,
    /// Topology label (`path` / `star` / `unit-disk`).
    pub topology: String,
    /// Executor label (`serial` / `parallel` / `runtime@k`).
    pub exec: String,
    /// Schedule label (`full` / `active`).
    pub schedule: String,
    /// Node count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Timed repetitions behind the medians.
    pub reps: usize,
    /// Rounds to stabilization (deterministic in the seed).
    pub rounds: usize,
    /// Whether the run reached a fixpoint within the round budget.
    pub stabilized: bool,
    /// Total guard evaluations over the run (deterministic).
    pub guard_evals: u64,
    /// Rounds per second over the timed repetitions.
    pub rounds_per_sec: MetricPoint,
    /// Guard evaluations per second over the timed repetitions.
    pub guard_evals_per_sec: MetricPoint,
    /// Wire/shard quantities (sharded runtime cells only).
    pub wire: Option<WireSummary>,
}

impl BenchRecord {
    /// The cell's identity within the matrix, used to pair records when
    /// comparing artifacts: `protocol/topology/exec/schedule`.
    pub fn cell_id(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.protocol, self.topology, self.exec, self.schedule
        )
    }
}

impl ToJson for BenchRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", self.protocol.to_json()),
            ("topology", self.topology.to_json()),
            ("exec", self.exec.to_json()),
            ("schedule", self.schedule.to_json()),
            ("n", self.n.to_json()),
            ("m", self.m.to_json()),
            ("reps", self.reps.to_json()),
            ("rounds", self.rounds.to_json()),
            ("stabilized", self.stabilized.to_json()),
            ("guard_evals", self.guard_evals.to_json()),
            ("rounds_per_sec", self.rounds_per_sec.to_json()),
            ("guard_evals_per_sec", self.guard_evals_per_sec.to_json()),
            ("wire", self.wire.to_json()),
        ])
    }
}

impl FromJson for BenchRecord {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(BenchRecord {
            protocol: value.parse_field("protocol")?,
            topology: value.parse_field("topology")?,
            exec: value.parse_field("exec")?,
            schedule: value.parse_field("schedule")?,
            n: value.parse_field("n")?,
            m: value.parse_field("m")?,
            reps: value.parse_field("reps")?,
            rounds: value.parse_field("rounds")?,
            stabilized: value.parse_field("stabilized")?,
            guard_evals: value.parse_field("guard_evals")?,
            rounds_per_sec: value.parse_field("rounds_per_sec")?,
            guard_evals_per_sec: value.parse_field("guard_evals_per_sec")?,
            wire: value.parse_field("wire")?,
        })
    }
}

/// Environment header: enough to know whether two artifacts are even
/// comparable hardware-wise.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineMeta {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism at measurement time.
    pub cpus: usize,
    /// Workspace crate version that produced the artifact.
    pub crate_version: String,
}

impl MachineMeta {
    /// Capture the current environment.
    pub fn capture() -> MachineMeta {
        MachineMeta {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism().map_or(1, |p| p.get()),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }
}

impl ToJson for MachineMeta {
    fn to_json(&self) -> Json {
        Json::obj([
            ("os", self.os.to_json()),
            ("arch", self.arch.to_json()),
            ("cpus", self.cpus.to_json()),
            ("crate_version", self.crate_version.to_json()),
        ])
    }
}

impl FromJson for MachineMeta {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(MachineMeta {
            os: value.parse_field("os")?,
            arch: value.parse_field("arch")?,
            cpus: value.parse_field("cpus")?,
            crate_version: value.parse_field("crate_version")?,
        })
    }
}

/// One `BENCH_<pr>.json` artifact: header plus one record per matrix cell.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchArtifact {
    /// Schema identifier (must equal [`SCHEMA`]).
    pub schema: String,
    /// PR number the artifact anchors in the trajectory.
    pub pr: String,
    /// Tier name (`quick` / `default`).
    pub tier: String,
    /// Master seed the matrix spread its per-cell seeds from.
    pub master_seed: u64,
    /// Environment header.
    pub machine: MachineMeta,
    /// One record per matrix cell.
    pub records: Vec<BenchRecord>,
}

impl ToJson for BenchArtifact {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", self.schema.to_json()),
            ("pr", self.pr.to_json()),
            ("tier", self.tier.to_json()),
            ("master_seed", self.master_seed.to_json()),
            ("machine", self.machine.to_json()),
            ("records", self.records.to_json()),
        ])
    }
}

impl FromJson for BenchArtifact {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(BenchArtifact {
            schema: value.parse_field("schema")?,
            pr: value.parse_field("pr")?,
            tier: value.parse_field("tier")?,
            master_seed: value.parse_field("master_seed")?,
            machine: value.parse_field("machine")?,
            records: value.parse_field("records")?,
        })
    }
}

impl BenchArtifact {
    /// Parse an artifact from JSON text, validating the schema tag.
    pub fn parse(text: &str) -> Result<BenchArtifact, String> {
        let json = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let artifact =
            BenchArtifact::from_json(&json).map_err(|e| format!("invalid bench artifact: {e}"))?;
        if artifact.schema != SCHEMA {
            return Err(format!(
                "schema mismatch: artifact is `{}`, this binary reads `{SCHEMA}`",
                artifact.schema
            ));
        }
        Ok(artifact)
    }

    /// Read and validate an artifact file.
    pub fn read_from(path: &str) -> Result<BenchArtifact, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        Self::parse(&text).map_err(|e| format!("`{path}`: {e}"))
    }

    /// Pretty-print and write the artifact.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Does this text look like a bench artifact (vs. a JSONL metrics
    /// stream)? Cheap sniff used by `selfstab analyze` to pick a renderer.
    pub fn sniff(text: &str) -> bool {
        let trimmed = text.trim_start();
        trimmed.starts_with('{')
            && Json::parse(text)
                .ok()
                .and_then(|j| j.get("schema").and_then(|s| s.as_str().map(str::to_string)))
                .is_some_and(|s| s == SCHEMA)
    }
}

/// Everything one cell's measurement produced, before summarization.
struct CellMeasurement {
    rounds: usize,
    stabilized: bool,
    guard_evals: u64,
    wire: Option<WireSummary>,
    elapsed_secs: Vec<f64>,
}

/// Run one cell: one observed pass for the deterministic counters, then
/// `reps` unobserved timed passes from the identical initial state (skipped
/// when the observed run did not stabilize — timing a round-limit hit would
/// measure the budget, not the protocol).
fn measure_cell<P>(
    graph: &Graph,
    proto: &P,
    exec: ExecKind,
    schedule: Schedule,
    init_seed: u64,
    max_rounds: usize,
    reps: usize,
) -> CellMeasurement
where
    P: Protocol,
    P::State: WireState,
{
    let init = InitialState::Random { seed: init_seed };
    let mut metrics = MetricsCollector::new();
    let (rounds, stabilized) = match exec {
        ExecKind::Serial => {
            let e = SyncExecutor::new(graph, proto).with_schedule(schedule);
            let run = e.run_observed(init.clone(), max_rounds, &mut metrics);
            (run.rounds(), run.stabilized())
        }
        ExecKind::Parallel => {
            let e = ParSyncExecutor::new(graph, proto).with_schedule(schedule);
            let run = e.run_observed(init.clone(), max_rounds, &mut metrics);
            (run.rounds(), run.stabilized())
        }
        ExecKind::Runtime(k) => {
            let e = RuntimeExecutor::new(graph, proto, k).with_schedule(schedule);
            let run = e
                .run_observed(init.clone(), max_rounds, &mut metrics)
                .expect("clean sharded bench run failed");
            (run.rounds(), run.stabilized())
        }
    };

    let guard_evals: u64 = metrics.rounds().iter().map(|r| r.evaluated as u64).sum();
    let wire = fold_wire(&metrics, rounds);

    let mut elapsed_secs = Vec::with_capacity(reps);
    if stabilized {
        for _ in 0..reps {
            let start = Instant::now();
            let got = match exec {
                ExecKind::Serial => {
                    let e = SyncExecutor::new(graph, proto).with_schedule(schedule);
                    e.run(init.clone(), max_rounds).rounds()
                }
                ExecKind::Parallel => {
                    let e = ParSyncExecutor::new(graph, proto).with_schedule(schedule);
                    e.run(init.clone(), max_rounds).rounds()
                }
                ExecKind::Runtime(k) => {
                    let e = RuntimeExecutor::new(graph, proto, k).with_schedule(schedule);
                    e.run(init.clone(), max_rounds)
                        .expect("clean sharded bench run failed")
                        .rounds()
                }
            };
            elapsed_secs.push(start.elapsed().as_secs_f64());
            debug_assert_eq!(got, rounds, "same seed must replay the same rounds");
        }
    }

    CellMeasurement {
        rounds,
        stabilized,
        guard_evals,
        wire,
        elapsed_secs,
    }
}

/// Fold the observed run's runtime counters and lane profiles into a
/// [`WireSummary`]; `None` when the run carried no runtime counters
/// (serial/parallel executors).
fn fold_wire<S>(metrics: &MetricsCollector<S>, rounds: usize) -> Option<WireSummary> {
    let mut any = false;
    let (mut bytes, mut frames, mut suppressed, mut peak) = (0u64, 0u64, 0u64, 0u64);
    let mut acc = SkewAccumulator::new();
    let mut barrier_sum = 0.0;
    let mut profiled = 0usize;
    for (r, rec) in metrics.rounds().iter().enumerate() {
        if let Some(rt) = &rec.runtime {
            any = true;
            bytes += rt.bytes_on_wire;
            frames += rt.frames;
            suppressed += rt.frames_suppressed;
            peak = peak.max(rt.max_channel_depth);
        }
        if let Some(p) = &rec.profile {
            let samples: Vec<(usize, u64, u64)> = p
                .shards
                .iter()
                .map(|s| (s.shard, s.round_micros, s.inbox_max_depth))
                .collect();
            acc.record_round(r + 1, &samples);
            barrier_sum += p.barrier_wait_share();
            profiled += 1;
        }
    }
    if !any {
        return None;
    }
    Some(WireSummary {
        bytes_per_round: bytes as f64 / rounds.max(1) as f64,
        frames,
        frames_suppressed: suppressed,
        peak_inbox: peak,
        mean_skew: acc.mean_skew(),
        barrier_share: if profiled > 0 {
            barrier_sum / profiled as f64
        } else {
            0.0
        },
        straggler: acc.straggler(),
        lane_micros: acc.lanes().iter().map(|l| l.total_micros).collect(),
        lane_inbox: acc.lanes().iter().map(|l| l.max_inbox_depth).collect(),
    })
}

/// Summarize per-rep throughput samples into the record's metric points.
/// An empty sample set (non-stabilized cell) yields NaN medians, which the
/// comparator treats as incomparable rather than regressed.
fn throughput_points(numerator: f64, elapsed_secs: &[f64]) -> MetricPoint {
    let samples: Vec<f64> = elapsed_secs.iter().map(|&s| numerator / s).collect();
    MetricPoint::of(&Summary::of(&samples))
}

/// Measure one cell and assemble its [`BenchRecord`]. This is the single
/// bench runner in the repo: `run_matrix` calls it per matrix cell and the
/// `e7_runtime_throughput` criterion bench calls it for its `BENCH` lines,
/// so every emitted record follows the same schema and timing discipline.
#[allow(clippy::too_many_arguments)]
pub fn measure_record<P>(
    graph: &Graph,
    proto: &P,
    protocol: &str,
    topology: &str,
    exec: ExecKind,
    schedule: Schedule,
    init_seed: u64,
    max_rounds: usize,
    reps: usize,
) -> BenchRecord
where
    P: Protocol,
    P::State: WireState,
{
    let m = measure_cell(graph, proto, exec, schedule, init_seed, max_rounds, reps);
    BenchRecord {
        protocol: protocol.to_string(),
        topology: topology.to_string(),
        exec: exec.name(),
        schedule: schedule.to_string(),
        n: graph.n(),
        m: graph.m(),
        reps,
        rounds: m.rounds,
        stabilized: m.stabilized,
        guard_evals: m.guard_evals,
        rounds_per_sec: throughput_points(m.rounds as f64, &m.elapsed_secs),
        guard_evals_per_sec: throughput_points(m.guard_evals as f64, &m.elapsed_secs),
        wire: m.wire,
    }
}

/// Run the full pinned matrix at `tier` (honoring `n`/`reps` overrides) and
/// assemble the artifact. `progress` fires once per finished cell with a
/// short human-readable line.
pub fn run_matrix(
    tier: Tier,
    n_override: Option<usize>,
    reps_override: Option<usize>,
    pr: &str,
    progress: &mut dyn FnMut(&str),
) -> BenchArtifact {
    let suite = Suite::default();
    let n = n_override.unwrap_or_else(|| tier.n());
    let reps = reps_override.unwrap_or_else(|| tier.reps());
    let max_rounds = 4 * n + 16;
    let mut records = Vec::new();

    for topo in TopologyKind::ALL {
        let graph = topo.build(n, &suite);
        let mut id_rng = StdRng::seed_from_u64(suite.rep_seed(topo.name(), graph.n(), 1));
        let ids = Ids::random(graph.n(), &mut id_rng);
        for proto in ProtocolKind::ALL {
            let cell_label = format!("{}/{}", proto.name(), topo.name());
            let init_seed = suite.rep_seed(&cell_label, graph.n(), 2);
            for exec in ExecKind::all() {
                for schedule in [Schedule::Full, Schedule::Active] {
                    let record = match proto {
                        ProtocolKind::Smm => measure_record(
                            &graph,
                            &Smm::paper(ids.clone()),
                            proto.name(),
                            topo.name(),
                            exec,
                            schedule,
                            init_seed,
                            max_rounds,
                            reps,
                        ),
                        ProtocolKind::Smi => measure_record(
                            &graph,
                            &Smi::new(ids.clone()),
                            proto.name(),
                            topo.name(),
                            exec,
                            schedule,
                            init_seed,
                            max_rounds,
                            reps,
                        ),
                        ProtocolKind::HsuHuang => measure_record(
                            &graph,
                            &HsuHuang::classic(graph.n()),
                            proto.name(),
                            topo.name(),
                            exec,
                            schedule,
                            init_seed,
                            max_rounds,
                            reps,
                        ),
                    };
                    progress(&format!(
                        "{:<40} rounds {:>6}  rounds/s {:>12.1}{}",
                        record.cell_id(),
                        record.rounds,
                        record.rounds_per_sec.median,
                        if record.stabilized {
                            ""
                        } else {
                            "  [round limit]"
                        },
                    ));
                    records.push(record);
                }
            }
        }
    }

    BenchArtifact {
        schema: SCHEMA.to_string(),
        pr: pr.to_string(),
        tier: tier.name().to_string(),
        master_seed: suite.master_seed,
        machine: MachineMeta::capture(),
        records,
    }
}

/// One metric's delta within a paired cell.
#[derive(Clone, Debug)]
pub struct MetricDelta {
    /// Metric name (`rounds_per_sec`, `guard_evals_per_sec`, `rounds`,
    /// `bytes_per_round`).
    pub metric: &'static str,
    /// Baseline point.
    pub base: MetricPoint,
    /// Current point.
    pub current: MetricPoint,
    /// Relative delta `(current − base) / base`.
    pub rel: f64,
    /// The gate's judgement.
    pub verdict: Verdict,
}

/// One paired cell's deltas.
#[derive(Clone, Debug)]
pub struct CellComparison {
    /// Cell id (`protocol/topology/exec/schedule`).
    pub id: String,
    /// Per-metric deltas, in a fixed order.
    pub deltas: Vec<MetricDelta>,
}

/// The comparator's output over two artifacts.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Per-cell comparisons, in the current artifact's record order.
    pub cells: Vec<CellComparison>,
}

impl CompareReport {
    /// Count of deltas the gate judged `verdict`.
    pub fn count(&self, verdict: Verdict) -> usize {
        self.cells
            .iter()
            .flat_map(|c| c.deltas.iter())
            .filter(|d| d.verdict == verdict)
            .count()
    }

    /// Deltas the gate flagged (improved or regressed), regressions first,
    /// largest relative magnitude first within each class.
    pub fn flagged(&self) -> Vec<(&str, &MetricDelta)> {
        let mut out: Vec<(&str, &MetricDelta)> = self
            .cells
            .iter()
            .flat_map(|c| c.deltas.iter().map(move |d| (c.id.as_str(), d)))
            .filter(|(_, d)| d.verdict != Verdict::Unchanged)
            .collect();
        out.sort_by(|a, b| {
            let class = |v: Verdict| usize::from(v != Verdict::Regressed);
            class(a.1.verdict).cmp(&class(b.1.verdict)).then(
                b.1.rel
                    .abs()
                    .partial_cmp(&a.1.rel.abs())
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        out
    }
}

/// Diff two artifacts cell-by-cell under the noise gate.
///
/// Errors (the CLI's exit code 2) when the artifacts' matrices do not pair
/// one-to-one — a missing baseline cell means the comparison would silently
/// skip coverage, so it is refused instead.
pub fn compare(
    base: &BenchArtifact,
    current: &BenchArtifact,
    gate: &NoiseGate,
) -> Result<CompareReport, String> {
    let mut base_cells: Vec<(String, &BenchRecord)> =
        base.records.iter().map(|r| (r.cell_id(), r)).collect();
    let mut report = CompareReport::default();
    for cur in &current.records {
        let id = cur.cell_id();
        let Some(pos) = base_cells.iter().position(|(bid, _)| *bid == id) else {
            return Err(format!(
                "mismatched matrix: cell `{id}` has no baseline record (baseline pr {}, current pr {})",
                base.pr, current.pr
            ));
        };
        let (_, b) = base_cells.swap_remove(pos);
        let mut deltas = Vec::new();
        let mut push = |metric, bp: MetricPoint, cp: MetricPoint, dir| {
            deltas.push(MetricDelta {
                metric,
                base: bp,
                current: cp,
                rel: NoiseGate::rel_delta(bp, cp),
                verdict: gate.judge(bp, cp, dir),
            });
        };
        push(
            "rounds_per_sec",
            b.rounds_per_sec,
            cur.rounds_per_sec,
            Direction::HigherIsBetter,
        );
        push(
            "guard_evals_per_sec",
            b.guard_evals_per_sec,
            cur.guard_evals_per_sec,
            Direction::HigherIsBetter,
        );
        let point = |x: f64| MetricPoint {
            median: x,
            iqr: 0.0,
        };
        push(
            "rounds",
            point(b.rounds as f64),
            point(cur.rounds as f64),
            Direction::LowerIsBetter,
        );
        if let (Some(bw), Some(cw)) = (&b.wire, &cur.wire) {
            push(
                "bytes_per_round",
                point(bw.bytes_per_round),
                point(cw.bytes_per_round),
                Direction::LowerIsBetter,
            );
        }
        report.cells.push(CellComparison { id, deltas });
    }
    if let Some((id, _)) = base_cells.first() {
        return Err(format!(
            "mismatched matrix: baseline cell `{id}` ({} total) missing from current artifact",
            base_cells.len()
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_artifact() -> BenchArtifact {
        let mut progress = |_: &str| {};
        run_matrix(Tier::Quick, Some(24), Some(1), "test", &mut progress)
    }

    #[test]
    fn matrix_covers_all_axes_and_roundtrips() {
        let a = tiny_artifact();
        // 3 protocols × 3 topologies × (serial + parallel + 4 shard counts)
        // × 2 schedules.
        assert_eq!(a.records.len(), 108);
        let ids: std::collections::HashSet<String> =
            a.records.iter().map(|r| r.cell_id()).collect();
        assert_eq!(ids.len(), 108, "cell ids must be unique");
        assert!(ids.contains("smm/path/serial/full"));
        assert!(ids.contains("hsu-huang/unit-disk/runtime@8/active"));
        // Runtime cells carry wire summaries, serial/parallel cells don't.
        for r in &a.records {
            assert_eq!(
                r.wire.is_some(),
                r.exec.starts_with("runtime@"),
                "{}",
                r.cell_id()
            );
            assert!(r.stabilized, "{} must stabilize at n=24", r.cell_id());
            assert!(r.guard_evals > 0, "{}", r.cell_id());
        }
        let back = BenchArtifact::parse(&a.to_json().to_string_pretty()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn self_compare_is_all_unchanged() {
        let a = tiny_artifact();
        let report = compare(&a, &a, &NoiseGate::default()).unwrap();
        assert_eq!(report.cells.len(), 108);
        assert_eq!(report.count(Verdict::Regressed), 0);
        assert_eq!(report.count(Verdict::Improved), 0);
        assert!(report.flagged().is_empty());
    }

    #[test]
    fn injected_regression_is_flagged_and_mismatch_is_an_error() {
        let base = tiny_artifact();
        let mut cur = base.clone();
        // Inject a 2× rounds/sec regression into one cell.
        cur.records[0].rounds_per_sec.median /= 2.0;
        let report = compare(&base, &cur, &NoiseGate::default()).unwrap();
        assert_eq!(report.count(Verdict::Regressed), 1);
        let flagged = report.flagged();
        assert_eq!(flagged[0].1.metric, "rounds_per_sec");
        assert_eq!(flagged[0].1.verdict, Verdict::Regressed);

        // A missing baseline cell refuses to compare.
        let mut short = base.clone();
        short.records.pop();
        assert!(compare(&short, &cur, &NoiseGate::default())
            .unwrap_err()
            .contains("mismatched matrix"));
        assert!(compare(&cur, &short, &NoiseGate::default())
            .unwrap_err()
            .contains("mismatched matrix"));
    }

    #[test]
    fn sniff_distinguishes_artifacts_from_jsonl() {
        let a = tiny_artifact();
        assert!(BenchArtifact::sniff(&a.to_json().to_string_pretty()));
        assert!(!BenchArtifact::sniff("{\"round\": 1}\n{\"round\": 2}\n"));
        assert!(!BenchArtifact::sniff("not json"));
        // Wrong schema version parses but is refused.
        let mut wrong = a.clone();
        wrong.schema = "selfstab-bench/v0".into();
        let text = wrong.to_json().to_string_pretty();
        assert!(!BenchArtifact::sniff(&text));
        assert!(BenchArtifact::parse(&text)
            .unwrap_err()
            .contains("schema mismatch"));
    }
}
