//! The experiment harness: regenerates every table in EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! harness [--quick] [--metrics] [e1 e2 … e25 | all]
//! ```
//!
//! `--quick` shrinks the sweep (used by CI-style smoke runs); the default
//! sizes match the committed EXPERIMENTS.md. `--metrics` appends a
//! convergence-telemetry section (a representative observed run's
//! per-round census table and latency histogram). Output is Markdown on
//! stdout.

use selfstab_bench::experiments::{
    e01_smm_rounds, e02_smi_rounds, e03_transitions, e04_growth, e05_counterexample, e06_baseline,
    e07_faults, e08_adhoc, e09_mobility, e10_exhaustive, e11_quality, e13_coloring, e14_anonymous,
    e15_bfs_tree, e16_contention, e17_observability, e18_runtime_scaling, e19_active_schedule,
    e20_chaos, e21_shard_skew, e22_service, e23_sharded_service, e24_byzantine, e25_telemetry,
    Report,
};
use std::io::Write;

struct Config {
    quick: bool,
}

fn run_experiment(id: &str, cfg: &Config) -> Option<Report> {
    let q = cfg.quick;
    Some(match id {
        "e1" => e01_smm_rounds::run(
            if q {
                &[16, 64]
            } else {
                &[16, 32, 64, 128, 256, 512]
            },
            if q { 5 } else { 25 },
        ),
        "e2" => e02_smi_rounds::run(
            if q {
                &[16, 64]
            } else {
                &[16, 32, 64, 128, 256, 512]
            },
            if q { 5 } else { 25 },
        ),
        "e3" => e03_transitions::run(if q { &[12] } else { &[16, 48] }, if q { 5 } else { 40 }),
        "e4" => e04_growth::run(if q { &[16] } else { &[24, 64] }, if q { 5 } else { 25 }),
        "e5" => e05_counterexample::run(if q { 20 } else { 200 }),
        "e6" => e06_baseline::run(
            if q { &[16] } else { &[16, 32, 64, 128] },
            if q { 3 } else { 15 },
        ),
        "e7" => e07_faults::run(
            if q { 16 } else { 64 },
            if q { &[1, 4] } else { &[1, 2, 4, 8, 16] },
            if q { 3 } else { 15 },
        ),
        "e8" => e08_adhoc::run(if q { 12 } else { 24 }, if q { 2 } else { 5 }),
        "e9" => e09_mobility::run(
            if q { 12 } else { 24 },
            if q {
                &[0.005, 0.05]
            } else {
                &[0.002, 0.01, 0.05, 0.1, 0.2]
            },
            if q { 1 } else { 3 },
            if q { 120 } else { 600 },
        ),
        "e10" => {
            if q {
                e10_exhaustive::run(4, 5)
            } else {
                e10_exhaustive::run(5, 6)
            }
        }
        "e11" => e11_quality::run(if q { 14 } else { 18 }, if q { 3 } else { 15 }),
        "e13" => e13_coloring::run(
            if q {
                &[16, 64]
            } else {
                &[16, 32, 64, 128, 256]
            },
            if q { 5 } else { 25 },
        ),
        "e14" => e14_anonymous::run(
            if q { &[16] } else { &[16, 64, 256] },
            if q { 5 } else { 15 },
        ),
        "e15" => e15_bfs_tree::run(
            if q { &[16] } else { &[16, 64, 128] },
            if q { 3 } else { 10 },
        ),
        "e16" => e16_contention::run(
            if q { 16 } else { 36 },
            if q {
                &[0.0, 0.2]
            } else {
                &[0.0, 0.02, 0.05, 0.1, 0.2, 0.4]
            },
            if q { 3 } else { 10 },
        ),
        "e17" => e17_observability::run(
            if q { &[12] } else { &[16, 36, 64] },
            if q { 3 } else { 15 },
        ),
        "e18" => {
            e18_runtime_scaling::run(if q { &[2_000] } else { &[10_000, 100_000] }, &[1, 2, 4, 8])
        }
        "e19" => e19_active_schedule::run(if q { 2_000 } else { 100_000 }, 4),
        "e20" => e20_chaos::run(
            if q { &[500] } else { &[10_000, 100_000] },
            if q {
                &[0.0, 0.2]
            } else {
                &[0.0, 0.1, 0.2, 0.3]
            },
            if q { &[0, 6] } else { &[0, 8] },
        ),
        "e21" => e21_shard_skew::run(if q { &[2_000] } else { &[10_000, 100_000] }, &[2, 4, 8]),
        "e22" => e22_service::run(
            if q { &[2_000] } else { &[10_000, 100_000] },
            if q { 100 } else { 1_000 },
            if q { 50 } else { 200 },
        ),
        "e23" => e23_sharded_service::run(
            if q { 2_000 } else { 100_000 },
            &[2, 4, 8],
            if q { 1 } else { 2 },
        ),
        "e24" => e24_byzantine::run(
            if q { &[400] } else { &[10_000, 100_000] },
            if q { &[1, 4] } else { &[1, 4, 16] },
            if q { 16 } else { 48 },
            if q { &[8, 24] } else { &[8, 32, 128] },
        ),
        "e25" => e25_telemetry::run(
            if q { &[2_000] } else { &[10_000, 100_000] },
            if q { 100 } else { 1_000 },
        ),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let metrics = args.iter().any(|a| a == "--metrics");
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.to_lowercase())
        .collect();
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = (1..=11).map(|i| format!("e{i}")).collect();
        ids.push("e13".to_string());
        ids.push("e14".to_string());
        ids.push("e15".to_string());
        ids.push("e16".to_string());
        ids.push("e17".to_string());
        ids.push("e18".to_string());
        ids.push("e19".to_string());
        ids.push("e20".to_string());
        ids.push("e21".to_string());
        ids.push("e22".to_string());
        ids.push("e23".to_string());
        ids.push("e24".to_string());
        ids.push("e25".to_string());
    }
    let cfg = Config { quick };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "# selfstab experiment harness ({} mode)\n",
        if quick { "quick" } else { "full" }
    )
    .unwrap();
    for id in &ids {
        let start = std::time::Instant::now();
        match run_experiment(id, &cfg) {
            Some(report) => {
                writeln!(out, "{}", report.to_markdown()).unwrap();
                writeln!(
                    out,
                    "_({} completed in {:.1?})_\n",
                    report.id,
                    start.elapsed()
                )
                .unwrap();
            }
            None => {
                eprintln!("unknown experiment id: {id} (expected e1..e25 or all)");
                std::process::exit(2);
            }
        }
    }
    if metrics {
        writeln!(out, "{}", e17_observability::telemetry_section(quick)).unwrap();
    }
}
