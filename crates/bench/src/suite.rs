//! The shared topology/ID/seed sweep grid.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_analysis::seeds;
use selfstab_graph::{generators, Graph, Ids};

/// One experiment instance: a topology with an ID assignment.
pub struct Instance {
    /// Short label, e.g. `path`, `unit-disk`.
    pub label: String,
    /// The topology.
    pub graph: Graph,
    /// The protocol ID assignment.
    pub ids: Ids,
}

/// The standard sweep: structured families plus the two random ad hoc
/// models, at a given size.
pub struct Suite {
    /// Master seed (spread per cell with SplitMix64).
    pub master_seed: u64,
}

impl Default for Suite {
    fn default() -> Self {
        Suite {
            master_seed: 0x5e1f_57ab,
        }
    }
}

impl Suite {
    /// The seven structured families plus `unit-disk` and `gnp`, each at
    /// roughly `n` nodes, with random ID assignments.
    pub fn instances(&self, n: usize) -> Vec<Instance> {
        let mut out = Vec::new();
        for (fi, fam) in generators::Family::ALL.iter().enumerate() {
            let graph = fam.build(n);
            let mut rng =
                StdRng::seed_from_u64(seeds::derive(self.master_seed, &[fi as u64, n as u64, 0]));
            let ids = Ids::random(graph.n(), &mut rng);
            out.push(Instance {
                label: fam.name().to_string(),
                graph,
                ids,
            });
        }
        let mut rng = StdRng::seed_from_u64(seeds::derive(self.master_seed, &[100, n as u64, 0]));
        // Radius chosen to keep random geometric graphs connected with few
        // rejections across the sweep sizes.
        let radius = (2.2 * (n as f64).ln() / n as f64).sqrt().min(1.0);
        let graph = generators::random_geometric_connected(n, radius, &mut rng);
        let ids = Ids::random(graph.n(), &mut rng);
        out.push(Instance {
            label: "unit-disk".into(),
            graph,
            ids,
        });
        let mut rng = StdRng::seed_from_u64(seeds::derive(self.master_seed, &[101, n as u64, 0]));
        let p = (2.0 * (n as f64).ln() / n as f64).min(1.0);
        let graph = generators::erdos_renyi_connected(n, p, &mut rng);
        let ids = Ids::random(graph.n(), &mut rng);
        out.push(Instance {
            label: "gnp".into(),
            graph,
            ids,
        });
        out
    }

    /// Per-cell seed for repetition `rep` of instance `label` at size `n`.
    pub fn rep_seed(&self, label: &str, n: usize, rep: u64) -> u64 {
        let h = label
            .bytes()
            .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64));
        seeds::derive(self.master_seed, &[h, n as u64, rep])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_graph::traversal::is_connected;

    #[test]
    fn suite_instances_are_connected_and_sized() {
        let suite = Suite::default();
        let instances = suite.instances(32);
        assert_eq!(instances.len(), 9);
        for inst in &instances {
            assert!(is_connected(&inst.graph), "{}", inst.label);
            assert!(inst.graph.n() >= 16, "{}: {}", inst.label, inst.graph.n());
            assert_eq!(inst.ids.len(), inst.graph.n());
        }
    }

    #[test]
    fn rep_seeds_differ() {
        let suite = Suite::default();
        assert_ne!(suite.rep_seed("path", 8, 0), suite.rep_seed("path", 8, 1));
        assert_ne!(suite.rep_seed("path", 8, 0), suite.rep_seed("cycle", 8, 0));
    }
}
