//! E6 — Section 3: the synchronized central-daemon baseline is "not as
//! fast" as SMM.
//!
//! For each suite instance we measure, from the same random initial states:
//!
//! * SMM rounds (native synchronous protocol, Theorem 1),
//! * rounds of Hsu–Huang converted with the deterministic local-mutex
//!   refinement,
//! * rounds of Hsu–Huang converted with the randomized-priority refinement,
//! * Hsu–Huang central-daemon *moves* (its native complexity measure), for
//!   reference.
//!
//! The reproduced claim is the *ordering*: converted baselines cost more
//! rounds than SMM, typically by a constant-to-logarithmic factor.

use super::Report;
use crate::suite::Suite;
use selfstab_analysis::{Summary, Table};
use selfstab_core::hsu_huang::HsuHuang;
use selfstab_core::smm::Smm;
use selfstab_core::transformer::{run_synchronized, Refinement};
use selfstab_engine::central::{CentralExecutor, Scheduler};
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;

/// Run E6.
pub fn run(sizes: &[usize], reps: u64) -> Report {
    let suite = Suite::default();
    let mut table = Table::new(&[
        "topology",
        "n",
        "SMM rounds",
        "HH det-mutex rounds",
        "HH rand-priority rounds",
        "HH central moves",
        "slowdown (rand/SMM)",
    ]);
    let mut won = 0u64;
    let mut cells = 0u64;
    for &n in sizes {
        for inst in suite.instances(n) {
            let n_actual = inst.graph.n();
            let smm = Smm::paper(inst.ids.clone());
            let hh = HsuHuang::classic(n_actual);
            let (mut rs, mut rd, mut rr, mut mv) = (vec![], vec![], vec![], vec![]);
            for rep in 0..reps {
                let seed = suite.rep_seed(&inst.label, n_actual, rep ^ 0xe6);
                let init = InitialState::Random { seed };
                let a = SyncExecutor::new(&inst.graph, &smm).run(init.clone(), n_actual + 1);
                assert!(a.stabilized());
                rs.push(a.rounds());
                let b = run_synchronized(
                    &inst.graph,
                    &hh,
                    init.clone(),
                    Refinement::DeterministicLocalMutex,
                    100 * n_actual + 1000,
                );
                assert!(b.stabilized(), "det mutex must stabilize");
                rd.push(b.rounds());
                let c = run_synchronized(
                    &inst.graph,
                    &hh,
                    init.clone(),
                    Refinement::RandomizedPriority { seed },
                    100 * n_actual + 1000,
                );
                assert!(c.stabilized(), "rand priority must stabilize");
                rr.push(c.rounds());
                let d = CentralExecutor::new(&inst.graph, &hh).run(
                    init,
                    &mut Scheduler::random(seed),
                    1_000_000,
                );
                assert!(d.stabilized);
                mv.push(d.moves as usize);
            }
            let (ss, sd, sr, sm) = (
                Summary::of_usize(rs.iter().copied()),
                Summary::of_usize(rd.iter().copied()),
                Summary::of_usize(rr.iter().copied()),
                Summary::of_usize(mv.iter().copied()),
            );
            cells += 1;
            if sr.mean >= ss.mean {
                won += 1;
            }
            table.row_strings(vec![
                inst.label.clone(),
                n_actual.to_string(),
                ss.mean_pm_std(),
                sd.mean_pm_std(),
                sr.mean_pm_std(),
                sm.mean_pm_std(),
                format!("{:.2}×", sr.mean / ss.mean.max(1e-9)),
            ]);
        }
    }
    let body = format!(
        "Same initial states for all four executions. SMM was at least as fast as the\n\
         randomized-refinement baseline in {won}/{cells} cells (mean rounds).\n\n{}",
        table.to_markdown()
    );
    Report {
        id: "E6",
        title: "Native SMM vs synchronized Hsu–Huang (Section 3: \"not as fast\")",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_smm_wins_most_cells() {
        let r = super::run(&[16], 3);
        // Extract "won/cells" claim: SMM should win in a clear majority.
        let line = r
            .body
            .lines()
            .find(|l| l.contains("cells (mean rounds)"))
            .unwrap();
        let frac = line.split("in ").nth(1).unwrap().split(' ').next().unwrap();
        let (w, c) = frac.split_once('/').unwrap();
        let (w, c): (u64, u64) = (w.parse().unwrap(), c.parse().unwrap());
        assert!(w * 3 >= c * 2, "SMM should win >= 2/3 of cells: {frac}");
    }
}
