//! E16 (extension) — medium contention: implementing the link-layer
//! assumption.
//!
//! Section 2 *assumes* "a link-layer protocol … resolves any contention for
//! the shared medium". This experiment turns the assumption into a model:
//! beacons arriving at a receiver within a collision window destroy each
//! other. With perfectly aligned beacons the medium is useless; increasing
//! desynchronization (jitter) restores goodput and lets SMM stabilize —
//! quantifying exactly how much the paper's assumption is doing.

use super::Report;
use selfstab_adhoc::{BeaconConfig, BeaconSim, Topology};
use selfstab_analysis::Table;
use selfstab_core::smm::Smm;
use selfstab_engine::protocol::{InitialState, Protocol};
use selfstab_graph::{generators, Ids};

/// Run E16.
pub fn run(n: usize, jitters: &[f64], reps: u64) -> Report {
    let g = generators::Family::Grid.build(n);
    let n_actual = g.n();
    let smm = Smm::paper(Ids::identity(n_actual));
    let mut table = Table::new(&[
        "jitter (frac of t_b)",
        "collision rate",
        "stabilized runs",
        "mean periods to stabilize",
    ]);
    for &jitter in jitters {
        let mut collided = 0u64;
        let mut delivered = 0u64;
        let mut stabilized = 0u64;
        let mut periods = 0.0;
        for rep in 0..reps {
            let mut config = BeaconConfig {
                seed: 0xe16 ^ rep,
                ..BeaconConfig::default()
            }
            .with_collisions(2_000);
            if jitter > 0.0 {
                config = config.with_jitter(jitter);
            }
            let report = BeaconSim::new(
                &smm,
                Topology::Static(g.clone()),
                InitialState::Random { seed: rep },
                config,
            )
            .run(10, 120_000_000);
            collided += report.collisions;
            delivered += report.deliveries;
            let ok = report.quiesced && smm.is_legitimate(&g, &report.final_states);
            if ok {
                stabilized += 1;
                periods += report.stabilization_periods;
            }
        }
        let rate = collided as f64 / (collided + delivered).max(1) as f64;
        table.row_strings(vec![
            format!("{jitter}"),
            format!("{:.1}%", 100.0 * rate),
            format!("{stabilized}/{reps}"),
            if stabilized > 0 {
                format!("{:.1}", periods / stabilized as f64)
            } else {
                "—".into()
            },
        ]);
    }
    let body = format!(
        "Grid of {n_actual} nodes, collision window 2 ms, beacon interval 100 ms,\n\
         {reps} runs per point. Aligned beacons (jitter 0) collide at every receiver with\n\
         more than one neighbor; desynchronization restores the channel — the contention\n\
         resolution Section 2 attributes to the link layer.\n\n{}",
        table.to_markdown()
    );
    Report {
        id: "E16",
        title: "Extension: medium contention and why beacon jitter matters (Section 2 assumption)",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e16_jitter_beats_aligned() {
        let r = super::run(16, &[0.0, 0.2], 3);
        // The jittered row must stabilize in all runs.
        let jit_row = r.body.lines().find(|l| l.starts_with("| 0.2 |")).unwrap();
        assert!(jit_row.contains("3/3"), "{jit_row}");
    }
}
