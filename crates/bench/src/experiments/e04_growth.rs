//! E4 — Lemmas 9–10: while moves keep happening, the matching grows by at
//! least two **nodes** (one edge) every two rounds.
//!
//! Reports a per-round `|M_t|` series for a representative run and checks
//! the growth inequality over the whole sweep.

use super::Report;
use crate::suite::Suite;
use selfstab_analysis::Table;
use selfstab_core::smm::Smm;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;

/// Run E4.
pub fn run(sizes: &[usize], reps: u64) -> Report {
    let suite = Suite::default();
    let mut checked = 0u64;
    let mut violations = 0u64;
    let mut example: Option<(String, Vec<usize>)> = None;
    for &n in sizes {
        for inst in suite.instances(n) {
            let smm = Smm::paper(inst.ids.clone());
            let exec = SyncExecutor::new(&inst.graph, &smm).with_trace();
            for rep in 0..reps {
                let seed = suite.rep_seed(&inst.label, inst.graph.n(), rep ^ 0xe4);
                let run = exec.run(InitialState::Random { seed }, inst.graph.n() + 1);
                let trace = run.trace.as_ref().expect("traced");
                let sizes_nodes: Vec<usize> = trace
                    .iter()
                    .map(|s| 2 * Smm::matched_edges(&inst.graph, s).len())
                    .collect();
                // Lemma 10: for t >= 1, a move at time t+1 implies
                // |M_{t+2}| >= |M_t| + 2 (in nodes). Trace transitions all
                // contain moves, so the inequality applies to every window
                // [t, t+2] with t >= 1, t+2 <= last.
                for t in 1..sizes_nodes.len().saturating_sub(2) {
                    checked += 1;
                    if sizes_nodes[t + 2] < sizes_nodes[t] + 2 {
                        violations += 1;
                    }
                }
                if example.is_none() && sizes_nodes.len() >= 6 {
                    example = Some((format!("{} n={}", inst.label, inst.graph.n()), sizes_nodes));
                }
            }
        }
    }
    let mut series = Table::new(&["round t", "|M_t| (matched nodes)"]);
    if let Some((label, sizes_nodes)) = &example {
        for (t, m) in sizes_nodes.iter().enumerate() {
            series.row_strings(vec![t.to_string(), m.to_string()]);
        }
        let body = format!(
            "Checked {checked} two-round windows across the sweep: {violations} violations of\n\
             |M(t+2)| ≥ |M(t)| + 2. Example series ({label}):\n\n{}",
            series.to_markdown()
        );
        return Report {
            id: "E4",
            title: "Matching growth: ≥ 2 nodes per 2 rounds while active (Lemmas 9–10)",
            body,
        };
    }
    Report {
        id: "E4",
        title: "Matching growth: ≥ 2 nodes per 2 rounds while active (Lemmas 9–10)",
        body: format!(
            "Checked {checked} windows: {violations} violations (no long example trace)."
        ),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_no_violations() {
        let r = super::run(&[16, 24], 5);
        assert!(r.body.contains(" 0 violations"), "{}", r.body);
    }
}
