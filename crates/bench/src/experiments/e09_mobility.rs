//! E9 — maintaining the predicate under mobility (the motivating scenario).
//!
//! Hosts move under connectivity-preserving random waypoint while the
//! protocol runs on beacons. We sweep host speed and report the fraction of
//! beacon periods in which the global predicate held on the ground-truth
//! topology. The reproduced shape: at walking-pace churn the predicate
//! holds almost always; it degrades gracefully as speed grows.

use super::Report;
use selfstab_adhoc::geometry::Region;
use selfstab_adhoc::mobility::RandomWaypoint;
use selfstab_adhoc::{BeaconConfig, BeaconSim, Topology};
use selfstab_analysis::Table;
use selfstab_core::smm::Smm;
use selfstab_core::Smi;
use selfstab_engine::protocol::InitialState;
use selfstab_graph::Ids;

const MS: u64 = 1_000;

fn one_run<P: selfstab_engine::Protocol>(
    proto: &P,
    n: usize,
    speed: f64,
    seed: u64,
    horizon_periods: u64,
) -> f64 {
    let model = RandomWaypoint::new(n, Region::unit(), 0.45, speed, seed);
    let config = BeaconConfig {
        seed,
        sample_legitimacy: true,
        ..BeaconConfig::default()
    };
    let sim = BeaconSim::new(
        proto,
        Topology::Mobile {
            model,
            tick: 100 * MS,
        },
        InitialState::Default,
        config,
    );
    let report = sim.run(u64::MAX / 1_000_000, horizon_periods * 100 * MS);
    report.legitimacy_fraction()
}

/// Run E9. `speeds` are in region-widths per second.
pub fn run(n: usize, speeds: &[f64], reps: u64, horizon_periods: u64) -> Report {
    let mut table = Table::new(&[
        "host speed (regions/s)",
        "SMM: % periods matching maximal",
        "SMI: % periods set maximal-independent",
    ]);
    for &speed in speeds {
        let mut smm_fracs = Vec::new();
        let mut smi_fracs = Vec::new();
        for rep in 0..reps {
            let seed = 0xe9_u64 ^ (rep << 8) ^ ((speed * 1000.0) as u64);
            let smm = Smm::paper(Ids::identity(n));
            smm_fracs.push(one_run(&smm, n, speed, seed, horizon_periods));
            let smi = Smi::new(Ids::identity(n));
            smi_fracs.push(one_run(&smi, n, speed, seed ^ 1, horizon_periods));
        }
        let mean = |v: &[f64]| 100.0 * v.iter().sum::<f64>() / v.len() as f64;
        table.row_strings(vec![
            format!("{speed}"),
            format!("{:.1}%", mean(&smm_fracs)),
            format!("{:.1}%", mean(&smi_fracs)),
        ]);
    }
    let body = format!(
        "{n} hosts, radio range 0.45, beacon interval 100 ms, horizon {horizon_periods} beacon\n\
         periods, {reps} runs per speed. Mobility ticks every beacon period; connectivity is\n\
         never allowed to break (coordinated movement, Section 2).\n\n{}",
        table.to_markdown()
    );
    Report {
        id: "E9",
        title: "Predicate maintenance under host mobility",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e9_slow_hosts_hold_predicate() {
        let r = super::run(12, &[0.005, 0.05], 1, 120);
        assert!(r.body.contains("%"));
        // The slow row should show a high hold fraction for SMI.
        let slow_row = r.body.lines().find(|l| l.starts_with("| 0.005 |")).unwrap();
        let smi_cell = slow_row
            .split('|')
            .nth(3)
            .unwrap()
            .trim()
            .trim_end_matches('%');
        let frac: f64 = smi_cell.parse().unwrap();
        assert!(
            frac > 60.0,
            "slow mobility should hold the MIS predicate: {frac}"
        );
    }
}
