//! E14 (extension) — dropping the unique-ID assumption with randomization.
//!
//! Section 4 requires distinct neighbor IDs; the randomized anonymous MIS
//! replaces them with private coins. This experiment measures its rounds on
//! the suite against deterministic SMI, demonstrating (a) correctness
//! without IDs, (b) the *logarithmic-ish* round growth randomization buys
//! on sparse graphs, and (c) the symmetric-start livelock that shows why
//! the deterministic protocols need IDs at all.

use super::Report;
use crate::suite::Suite;
use selfstab_analysis::{Summary, Table};
use selfstab_core::anonymous::AnonMis;
use selfstab_core::Smi;
use selfstab_engine::protocol::{InitialState, Protocol};
use selfstab_engine::sync::{Outcome, SyncExecutor};
use selfstab_graph::generators;

/// Run E14.
pub fn run(sizes: &[usize], reps: u64) -> Report {
    let suite = Suite::default();
    let mut table = Table::new(&[
        "topology",
        "n",
        "SMI rounds (IDs)",
        "AnonMIS rounds (coins)",
        "AnonMIS max",
        "all MIS",
    ]);
    let mut all_ok = true;
    for &n in sizes {
        for inst in suite.instances(n) {
            let n_actual = inst.graph.n();
            let smi = Smi::new(inst.ids.clone());
            let anon = AnonMis::new();
            let (mut rs, mut ra) = (vec![], vec![]);
            let mut ok = true;
            for rep in 0..reps {
                let seed = suite.rep_seed(&inst.label, n_actual, rep ^ 0xe14);
                let a = SyncExecutor::new(&inst.graph, &smi)
                    .run(InitialState::Random { seed }, n_actual + 2);
                ok &= a.stabilized();
                rs.push(a.rounds());
                let b = SyncExecutor::new(&inst.graph, &anon)
                    .run(InitialState::Random { seed }, 8 * n_actual + 64);
                ok &= b.stabilized() && anon.is_legitimate(&inst.graph, &b.final_states);
                ra.push(b.rounds());
            }
            all_ok &= ok;
            let ss = Summary::of_usize(rs.iter().copied());
            let sa = Summary::of_usize(ra.iter().copied());
            table.row_strings(vec![
                inst.label.clone(),
                n_actual.to_string(),
                ss.mean_pm_std(),
                sa.mean_pm_std(),
                format!("{}", sa.max as usize),
                if ok { "yes".into() } else { "**NO**".into() },
            ]);
        }
    }
    // The livelock witness.
    let g = generators::cycle(4);
    let anon = AnonMis::new();
    let run = SyncExecutor::new(&g, &anon).run(InitialState::Default, 5_000);
    let livelock = !matches!(run.outcome, Outcome::Stabilized);
    let body = format!(
        "{reps} random coin assignments per cell; every run reached a maximal independent\n\
         set **without any node IDs** ({}). With all coins equal (the fully symmetric\n\
         adversarial start) the protocol livelocked on C₄ as impossibility demands: {}.\n\n{}",
        if all_ok {
            "all cells clean"
        } else {
            "FAILURES present"
        },
        if livelock {
            "confirmed"
        } else {
            "**NOT OBSERVED**"
        },
        table.to_markdown()
    );
    Report {
        id: "E14",
        title: "Extension: anonymous randomized MIS (coins replace the unique-ID assumption)",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e14_clean() {
        let r = super::run(&[16], 5);
        assert!(!r.body.contains("**NO**"));
        assert!(r.body.contains("confirmed"));
    }
}
