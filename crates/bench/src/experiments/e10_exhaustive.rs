//! E10 — machine-checking Theorems 1–2 exhaustively on small instances.
//!
//! For every labelled connected graph on up to `max_n` nodes and **every**
//! initial state, run the protocol and assert the round bound and the
//! legitimacy of the fixpoint. This is a proof-by-exhaustion for the small
//! cases, far stronger than sampling: SMM's state space is
//! `∏(deg(i)+1)`, SMI's is `2^n`.

use super::Report;
use selfstab_analysis::Table;
use selfstab_core::smm::Smm;
use selfstab_core::Smi;
use selfstab_engine::exhaustive::{
    all_connected_graphs, state_space_size, verify_all_initial_states,
};
use selfstab_graph::predicates::{is_maximal_independent_set, is_maximal_matching};
use selfstab_graph::Ids;

/// Run E10: SMM over all connected graphs up to `smm_max_n` nodes, SMI up
/// to `smi_max_n`.
pub fn run(smm_max_n: usize, smi_max_n: usize) -> Report {
    let mut table = Table::new(&[
        "protocol",
        "n",
        "connected graphs",
        "initial states checked",
        "max rounds observed",
        "bound",
        "all verified",
    ]);
    let mut all_ok = true;
    for n in 2..=smm_max_n {
        let mut graphs = 0u64;
        let mut states = 0u64;
        let mut max_rounds = 0usize;
        let mut ok = true;
        for g in all_connected_graphs(n) {
            graphs += 1;
            let smm = Smm::paper(Ids::identity(n));
            states += state_space_size(&g, &smm) as u64;
            let report = verify_all_initial_states(&g, &smm, n + 1, |g, states| {
                is_maximal_matching(g, &Smm::matched_edges(g, states))
            });
            ok &= report.all_ok();
            max_rounds = max_rounds.max(report.max_rounds);
        }
        all_ok &= ok;
        table.row_strings(vec![
            "SMM".into(),
            n.to_string(),
            graphs.to_string(),
            states.to_string(),
            max_rounds.to_string(),
            format!("n+1 = {}", n + 1),
            if ok { "yes".into() } else { "**NO**".into() },
        ]);
    }
    for n in 2..=smi_max_n {
        let mut graphs = 0u64;
        let mut states = 0u64;
        let mut max_rounds = 0usize;
        let mut ok = true;
        for g in all_connected_graphs(n) {
            graphs += 1;
            let smi = Smi::new(Ids::identity(n));
            states += state_space_size(&g, &smi) as u64;
            let report = verify_all_initial_states(&g, &smi, n + 2, |g, states| {
                is_maximal_independent_set(g, states)
            });
            ok &= report.all_ok();
            max_rounds = max_rounds.max(report.max_rounds);
        }
        all_ok &= ok;
        table.row_strings(vec![
            "SMI".into(),
            n.to_string(),
            graphs.to_string(),
            states.to_string(),
            max_rounds.to_string(),
            format!("n+2 = {}", n + 2),
            if ok { "yes".into() } else { "**NO**".into() },
        ]);
    }
    let body = format!(
        "Every labelled connected graph × every initial state, executed to fixpoint:\n\
         {}\n\n{}",
        if all_ok {
            "all runs stabilized within the bound and produced the correct structure."
        } else {
            "**SOME RUNS FAILED** — see table."
        },
        table.to_markdown()
    );
    Report {
        id: "E10",
        title: "Exhaustive verification of Theorems 1–2 on all small instances",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_exhaustive_small() {
        let r = super::run(4, 4);
        assert!(!r.body.contains("**NO**"), "{}", r.body);
        assert!(r.body.contains("| SMM | 4 | 38 |"));
    }
}
