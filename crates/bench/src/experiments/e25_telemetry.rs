//! E25 (extension) — telemetry off the hot path: per-event drain latency
//! with a live Prometheus scraper at 0, 1, and 10 Hz.
//!
//! The live telemetry plane is designed so observation never perturbs the
//! drain: with no registry attached the drain path performs *zero* clock
//! reads (pinned by the counting-clock test in
//! `crates/service/tests/telemetry.rs`), and with one attached the serve
//! thread only bumps relaxed atomics and pushes into a small
//! mutex-guarded ring — all quantile sorting happens on the *scraper's*
//! thread at render time. This experiment measures what that buys: the
//! per-event drain-latency tail of the same seeded churn stream with
//! telemetry off, telemetry on but unscraped, and telemetry on while a
//! TCP scraper polls the exposition endpoint at 1 and 10 Hz.

use super::e18_runtime_scaling::geometric_radius;
use super::e22_service::next_mutation;
use super::Report;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_analysis::Table;
use selfstab_core::Smm;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::Protocol;
use selfstab_graph::{generators, Ids};
use selfstab_service::{scrape_once, OverlayService, RealClock, ScrapeServer, Telemetry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One churn run: per-event wall-clock drain latencies (µs) plus the
/// scrape count observed by the registry (0 in unscraped modes).
struct CellStats {
    events_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    scrapes: u64,
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn churn_cell(n: usize, events: usize, telemetry: bool, scrape_hz: u32) -> CellStats {
    let g = generators::random_geometric_connected(
        n,
        geometric_radius(n),
        &mut StdRng::seed_from_u64(0xe25),
    );
    let smm = Smm::paper(Ids::identity(g.n()));
    let clock = RealClock::new();
    let registry = telemetry.then(|| Arc::new(Telemetry::new()));
    let mut svc = OverlayService::new(g, &smm, InitialState::Default, 0);
    if let Some(r) = &registry {
        svc = svc.with_telemetry(r.clone());
    }
    svc.stabilize(&clock, &mut ());
    assert!(svc.is_converged(), "bootstrap must converge");

    // The scraper polls the real TCP endpoint from its own thread, exactly
    // as a Prometheus agent would — connect, render, disconnect.
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = (scrape_hz > 0).then(|| {
        let registry = registry.clone().expect("scraping requires telemetry");
        let srv = ScrapeServer::bind("127.0.0.1:0", registry).expect("bind scrape listener");
        let addr = srv.addr().to_string();
        let stop = stop.clone();
        let period = Duration::from_micros(1_000_000 / u64::from(scrape_hz));
        // Scrape first, test the stop flag after: even a churn run shorter
        // than one scrape period gets at least one concurrent-ish poll.
        let poller = std::thread::spawn(move || loop {
            let _ = scrape_once(&addr);
            if stop.load(Ordering::Relaxed) {
                break;
            }
            std::thread::sleep(period);
        });
        (srv, poller)
    });

    let mut rng = StdRng::seed_from_u64(0x25);
    let mut latencies: Vec<u64> = Vec::with_capacity(events);
    let started = Instant::now();
    for _ in 0..events {
        let mutation = next_mutation(svc.graph(), &mut rng);
        let t = Instant::now();
        svc.enqueue(mutation);
        for r in svc.drain(&clock, &mut ()) {
            let rec = r.expect("generated mutations are valid");
            assert!(rec.converged, "per-event recovery within budget");
        }
        latencies.push(t.elapsed().as_micros() as u64);
    }
    let elapsed = started.elapsed();

    stop.store(true, Ordering::Relaxed);
    let scrapes = if let Some((mut srv, poller)) = scraper {
        poller.join().expect("scraper thread");
        srv.shutdown();
        registry.as_ref().map_or(0, |r| r.scrapes_total())
    } else {
        0
    };
    assert!(
        smm.is_legitimate(svc.graph(), svc.states()),
        "service is legitimate after the event stream"
    );

    latencies.sort_unstable();
    CellStats {
        events_per_sec: events as f64 / elapsed.as_secs_f64(),
        p50_us: quantile(&latencies, 0.5),
        p99_us: quantile(&latencies, 0.99),
        scrapes,
    }
}

/// Run E25: drain latency with telemetry off / on / on+scraped.
pub fn run(sizes: &[usize], events: usize) -> Report {
    let mut table = Table::new(&[
        "n",
        "mode",
        "events",
        "events/s",
        "drain p50 µs",
        "drain p99 µs",
        "scrapes",
    ]);
    for &n in sizes {
        for (mode, telemetry, hz) in [
            ("off", false, 0u32),
            ("on, unscraped", true, 0),
            ("on, 1 Hz scrape", true, 1),
            ("on, 10 Hz scrape", true, 10),
        ] {
            let s = churn_cell(n, events, telemetry, hz);
            table.row_strings(vec![
                format!("{n}"),
                mode.to_string(),
                format!("{events}"),
                format!("{:.0}", s.events_per_sec),
                format!("{}", s.p50_us),
                format!("{}", s.p99_us),
                format!("{}", s.scrapes),
            ]);
        }
    }
    let body = format!(
        "The E22 churn stream (seeded edge toggles with node crash/rejoin, SMM on a\n\
         connected unit-disk graph, per-event budget n+2) re-run four ways: telemetry\n\
         registry absent, attached but never scraped, and attached while a real TCP\n\
         scraper polls the Prometheus endpoint at 1 Hz and 10 Hz from another thread.\n\
         Latency is the wall-clock enqueue→drain time per event, measured outside the\n\
         service. The unobserved run takes zero clock reads on the drain path (pinned\n\
         by the counting-clock equivalence test); the observed runs add two `now_micros`\n\
         reads and a short mutex push per event, and the scraper's quantile sorting\n\
         runs entirely on its own thread against the shared registry — so the drain\n\
         tail should be statistically flat across all four modes, and the scrape\n\
         column only confirms the poller really ran. A p99 that *grew* with scrape\n\
         rate would mean the registry lock or the listener had leaked onto the hot\n\
         path.\n\n{}",
        table.to_markdown()
    );
    Report {
        id: "E25",
        title: "Extension: telemetry plane — drain latency under live scraping",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e25_reports_all_modes_and_observation_stays_off_the_hot_path() {
        let r = super::run(&[300], 60);
        for mode in [
            "off",
            "on, unscraped",
            "on, 1 Hz scrape",
            "on, 10 Hz scrape",
        ] {
            assert!(r.body.contains(mode), "{}", r.body);
        }
        // The 10 Hz scraper must actually have scraped at least once.
        let scraped = r.body.lines().filter(|l| l.contains("10 Hz")).any(|l| {
            l.rsplit('|')
                .find(|c| !c.trim().is_empty())
                .and_then(|c| c.trim().parse::<u64>().ok())
                .is_some_and(|s| s > 0)
        });
        assert!(scraped, "{}", r.body);
    }
}
