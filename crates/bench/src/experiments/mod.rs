//! One module per experiment (IDs match DESIGN.md / EXPERIMENTS.md).

pub mod e01_smm_rounds;
pub mod e02_smi_rounds;
pub mod e03_transitions;
pub mod e04_growth;
pub mod e05_counterexample;
pub mod e06_baseline;
pub mod e07_faults;
pub mod e08_adhoc;
pub mod e09_mobility;
pub mod e10_exhaustive;
pub mod e11_quality;
pub mod e13_coloring;
pub mod e14_anonymous;
pub mod e15_bfs_tree;
pub mod e16_contention;
pub mod e17_observability;
pub mod e18_runtime_scaling;
pub mod e19_active_schedule;
pub mod e20_chaos;
pub mod e21_shard_skew;
pub mod e22_service;
pub mod e23_sharded_service;
pub mod e24_byzantine;
pub mod e25_telemetry;

/// An experiment's rendered report section.
pub struct Report {
    /// Experiment ID, e.g. `E1`.
    pub id: &'static str,
    /// Title line.
    pub title: &'static str,
    /// Markdown body (tables + commentary).
    pub body: String,
}

impl Report {
    /// Render the full Markdown section.
    pub fn to_markdown(&self) -> String {
        format!("## {} — {}\n\n{}\n", self.id, self.title, self.body)
    }
}
