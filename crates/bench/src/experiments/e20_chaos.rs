//! E20 (extension) — in-flight chaos resilience: beacon loss × live churn
//! on random geometric graphs, plus a shard crash-restart recovery demo.
//!
//! The chaos layer (`selfstab_runtime::FaultPlan`) perturbs the *live*
//! sharded execution: beacon frames are dropped at the channel boundary
//! (receivers keep evaluating against the last cached beacon and senders
//! re-broadcast until the ghost is confirmed up to date), and a
//! `ChurnSchedule` rewires the topology mid-run. Self-stabilization says
//! the protocols must converge *through* the faults to a configuration
//! that is legitimate on the final topology — this experiment measures the
//! price (round slowdown vs the clean run) across drop rates and churn.

use super::e18_runtime_scaling::geometric_radius;
use super::Report;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_analysis::Table;
use selfstab_core::smm::Smm;
use selfstab_core::Smi;
use selfstab_engine::active::Schedule;
use selfstab_engine::chaos::ChurnSchedule;
use selfstab_engine::obs::MetricsCollector;
use selfstab_engine::protocol::{InitialState, Protocol, WireState};
use selfstab_graph::{generators, Graph, Ids};
use selfstab_runtime::{run_churned_sharded, FaultPlan, RuntimeExecutor};

const SHARDS: usize = 4;

struct Cell {
    rounds: usize,
    legitimate: bool,
    dropped: u64,
    recovery: Option<usize>,
}

fn sum_counter<S>(
    m: &MetricsCollector<S>,
    f: impl Fn(&selfstab_engine::RuntimeCounters) -> u64,
) -> u64 {
    m.rounds()
        .iter()
        .filter_map(|r| r.runtime.as_ref())
        .map(f)
        .sum()
}

fn run_cell<P: Protocol>(
    g: &Graph,
    proto: &P,
    plan: Option<FaultPlan>,
    churn: Option<&ChurnSchedule>,
    max_rounds: usize,
) -> Cell
where
    P::State: WireState,
{
    let mut m = MetricsCollector::new();
    let init = InitialState::Random { seed: 20 };
    match churn {
        Some(sched) => {
            let out = run_churned_sharded(
                g,
                proto,
                SHARDS,
                Schedule::Active,
                None,
                plan.as_ref(),
                sched,
                init,
                max_rounds,
                &mut m,
            )
            .expect("churned chaos run failed");
            Cell {
                rounds: out.run.rounds(),
                legitimate: out.run.stabilized()
                    && proto.is_legitimate(&out.graph, &out.run.final_states),
                dropped: sum_counter(&m, |rt| rt.frames_dropped),
                recovery: out.recovery_rounds(),
            }
        }
        None => {
            let mut exec = RuntimeExecutor::new(g, proto, SHARDS);
            if let Some(p) = plan {
                exec = exec.with_chaos(p);
            }
            let run = exec
                .run_observed(init, max_rounds, &mut m)
                .expect("chaos run failed");
            Cell {
                rounds: run.rounds(),
                legitimate: run.stabilized() && proto.is_legitimate(g, &run.final_states),
                dropped: sum_counter(&m, |rt| rt.frames_dropped),
                recovery: m.recovery_rounds(),
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn sweep<P: Protocol>(
    table: &mut Table,
    g: &Graph,
    proto: &P,
    name: &str,
    drops: &[f64],
    churn_intervals: &[usize],
    max_rounds: usize,
) where
    P::State: WireState,
{
    let mut clean_rounds: Option<usize> = None;
    for &every in churn_intervals {
        let churn = (every > 0).then(|| {
            ChurnSchedule::new(every, 0xe20)
                .with_events(2)
                .with_epochs(2)
        });
        for &drop in drops {
            let plan = (drop > 0.0).then(|| {
                let mut p = FaultPlan::new(20);
                p.drop = drop;
                p
            });
            let cell = run_cell(g, proto, plan, churn.as_ref(), max_rounds);
            assert!(
                cell.legitimate,
                "{name} must re-stabilize legitimately (n={}, drop={drop}, churn-every={every})",
                g.n()
            );
            let clean = *clean_rounds.get_or_insert(cell.rounds);
            table.row_strings(vec![
                format!("{}", g.n()),
                name.into(),
                format!("{drop:.1}"),
                if every == 0 {
                    "—".into()
                } else {
                    format!("2 edges @ every {every}")
                },
                format!("{}", cell.rounds),
                format!("{:.2}×", cell.rounds as f64 / clean.max(1) as f64),
                format!("{}", cell.dropped),
                cell.recovery
                    .map(|r| format!("{r}"))
                    .unwrap_or_else(|| "—".into()),
                format!("{}", cell.legitimate),
            ]);
        }
    }
}

/// Run E20: the drop-rate × churn sweep for SMM and SMI, then the
/// crash-restart demo on the smallest size.
pub fn run(sizes: &[usize], drops: &[f64], churn_intervals: &[usize]) -> Report {
    let mut table = Table::new(&[
        "n",
        "protocol",
        "drop",
        "churn",
        "rounds",
        "× clean",
        "frames dropped",
        "recovery",
        "legitimate",
    ]);
    for &n in sizes {
        let g = generators::random_geometric_connected(
            n,
            geometric_radius(n),
            &mut StdRng::seed_from_u64(0xe20),
        );
        let max_rounds = 4 * g.n() + 16;
        let smm = Smm::paper(Ids::identity(g.n()));
        sweep(
            &mut table,
            &g,
            &smm,
            "SMM",
            drops,
            churn_intervals,
            max_rounds,
        );
        let smi = Smi::new(Ids::identity(g.n()));
        sweep(
            &mut table,
            &g,
            &smi,
            "SMI",
            drops,
            churn_intervals,
            max_rounds,
        );
    }

    // Crash-restart: kill worker 1 entering round 3; it respawns with
    // arbitrary (adversarial) states for every node and the run must still
    // end legitimate.
    let n = sizes[0];
    let g = generators::random_geometric_connected(
        n,
        geometric_radius(n),
        &mut StdRng::seed_from_u64(0xe20),
    );
    let smm = Smm::paper(Ids::identity(g.n()));
    let mut m = MetricsCollector::new();
    let run = RuntimeExecutor::new(&g, &smm, SHARDS)
        .with_chaos(FaultPlan::new(21).with_crash(1, 3))
        .run_observed(InitialState::Random { seed: 20 }, 4 * g.n() + 16, &mut m)
        .expect("crash-restart run failed");
    let restarts = sum_counter(&m, |rt| rt.restarts);
    let crash_legit = run.stabilized() && smm.is_legitimate(&g, &run.final_states);
    assert_eq!(restarts, 1, "exactly one injected restart");
    assert!(crash_legit, "crash-restart must recover to legitimacy");

    let body = format!(
        "SMM and SMI on a connected random geometric graph per size (radius ≈\n\
         1.4·connectivity threshold), {SHARDS} shards, active schedule, budget 4n+16\n\
         rounds. `drop` is the per-frame beacon loss probability at the shard\n\
         channel boundary; `churn` applies 2 connectivity-preserving edge events\n\
         per epoch for 2 epochs at the given interval, and legitimacy is judged\n\
         on the final mutated topology. `× clean` is the round count relative to\n\
         the fault-free cell of the same sweep; `recovery` is rounds from the\n\
         last injected fault to stabilization (churned cells). Every cell is\n\
         asserted to end in a legitimate configuration.\n\n{}\n\n\
         Crash-restart (n={n}, SMM): worker 1 killed entering round 3 and\n\
         respawned with arbitrary states for all of its nodes — {restarts} restart,\n\
         stabilized after {} rounds, final configuration legitimate: {crash_legit}.\n\
         Lossy chaos also *breaks* synchronous livelocks: the clockwise-C4\n\
         counterexample oscillates forever under value-preserving chaos (dup)\n\
         but a dropped frame desynchronizes the lockstep and lets it escape —\n\
         see `crates/runtime/tests/chaos.rs`.",
        table.to_markdown(),
        run.rounds(),
    );
    Report {
        id: "E20",
        title: "Extension: in-flight chaos — beacon loss, live churn, crash-restart",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e20_cells_all_legitimate() {
        // run() asserts legitimacy of every cell and the crash-restart demo;
        // surviving a small sweep is the test.
        let r = super::run(&[300], &[0.0, 0.2], &[0, 6]);
        assert!(r.body.contains("frames dropped"), "{}", r.body);
        assert!(r.body.contains("1 restart"), "{}", r.body);
    }
}
