//! E21 (extension) — shard skew under profiling: how evenly the coarsened
//! partition spreads per-round work, and what the imbalance costs.
//!
//! E18 measures end-to-end throughput; E21 opens the round up. Every
//! sharded run is observed with a [`MetricsCollector`], whose per-round
//! [`RoundProfile`] carries one lane per worker (phase span sums, round
//! time, inbox high-water mark). Folding the lanes through the analysis
//! crate's [`SkewAccumulator`] yields the quantities the offline `analyze`
//! report prints — mean skew (slowest lane / mean lane per round), the
//! overall straggler lane, and the deepest inbox — and the table puts them
//! next to the partition-quality numbers (cut edges, size balance) that
//! explain them. Random geometric graphs again: the paper's ad-hoc model,
//! and the topology a coarsening partition is built for.
//!
//! [`RoundProfile`]: selfstab_engine::obs::RoundProfile

use super::e18_runtime_scaling::geometric_radius;
use super::Report;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_analysis::{SkewAccumulator, Table};
use selfstab_core::smm::Smm;
use selfstab_engine::obs::MetricsCollector;
use selfstab_engine::protocol::InitialState;
use selfstab_graph::{generators, Ids};
use selfstab_runtime::RuntimeExecutor;

/// Run E21: for each graph size and shard count, profile a sharded run and
/// report skew, straggler, barrier share, and partition quality.
pub fn run(sizes: &[usize], shard_counts: &[usize]) -> Report {
    let mut table = Table::new(&[
        "n",
        "edges",
        "shards",
        "cut edges",
        "max/ideal lane",
        "rounds",
        "mean skew",
        "straggler",
        "barrier share",
        "peak inbox",
    ]);
    for &n in sizes {
        let radius = geometric_radius(n);
        let g =
            generators::random_geometric_connected(n, radius, &mut StdRng::seed_from_u64(0xe21));
        let smm = Smm::paper(Ids::identity(g.n()));
        let init = InitialState::Random { seed: 21 };
        let max_rounds = g.n() + 2;

        for &k in shard_counts {
            let exec = RuntimeExecutor::new(&g, &smm, k);
            let part = exec.partition();
            let cut = part.cut_edges(&g).len();
            let balance = part.max_shard_size() as f64 / (g.n() as f64 / k as f64);
            let mut metrics = MetricsCollector::new();
            let run = exec
                .run_observed(init.clone(), max_rounds, &mut metrics)
                .expect("sharded run failed");
            assert!(
                run.stabilized(),
                "profiled run must stabilize (n={n}, k={k})"
            );

            let mut acc = SkewAccumulator::new();
            let mut barrier_share_sum = 0.0;
            let mut profiled = 0usize;
            for (r, rec) in metrics.rounds().iter().enumerate() {
                let Some(p) = rec.profile.as_ref() else {
                    continue;
                };
                let samples: Vec<(usize, u64, u64)> = p
                    .shards
                    .iter()
                    .map(|s| (s.shard, s.round_micros, s.inbox_max_depth))
                    .collect();
                acc.record_round(r + 1, &samples);
                barrier_share_sum += p.barrier_wait_share();
                profiled += 1;
            }
            assert_eq!(profiled, run.rounds(), "every round must carry a profile");
            let straggler = acc
                .straggler()
                .map_or_else(|| "—".into(), |s| format!("lane {s}"));
            let peak = acc.hot_channels().first().map_or_else(
                || "0".into(),
                |&(lane, depth, round)| format!("{depth} (lane {lane}, r{round})"),
            );
            table.row_strings(vec![
                format!("{}", g.n()),
                format!("{}", g.m()),
                format!("{k}"),
                format!("{cut}"),
                format!("{balance:.2}"),
                format!("{}", run.rounds()),
                format!("{:.2}", acc.mean_skew()),
                straggler,
                format!("{:.2}", barrier_share_sum / profiled.max(1) as f64),
                peak,
            ]);
        }
    }
    let body = format!(
        "SMM (min-id policies) on connected random geometric graphs, one seeded graph\n\
         and initial state per size, observed with the profiling stack (phase spans on\n\
         every worker). `mean skew` is the per-round slowest-lane/mean-lane time ratio\n\
         averaged over rounds (1.00 = perfectly balanced); `straggler` is the lane that\n\
         was slowest most often; `barrier share` is the fraction of summed lane time\n\
         spent blocked on the round barrier — the price of the skew, since every lane\n\
         waits for the straggler. `max/ideal lane` (partition balance) and `cut edges`\n\
         are the partition-quality inputs that drive both.\n\n{}",
        table.to_markdown()
    );
    Report {
        id: "E21",
        title: "Extension: shard skew and backpressure under the profiling stack",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e21_profiles_every_round_and_names_a_straggler() {
        // run() asserts per-round profiles internally; the table must name
        // a straggler lane and a finite skew for a real multi-shard run.
        let r = super::run(&[200], &[2, 4]);
        assert!(r.body.contains("lane "), "{}", r.body);
        assert!(r.body.contains("mean skew"), "{}", r.body);
    }
}
