//! E24 (extension) — Byzantine containment: compromised nodes × rewrite
//! strategy × topology, measuring how far adversarial damage reaches.
//!
//! Each cell stabilizes the protocol cleanly, then marks a seeded set of
//! nodes Byzantine (`FaultPlan::with_byz`): every round the chaos layer
//! rewrites their state into an adversarial but well-formed value while
//! the honest nodes keep running the protocol on the sharded runtime. At
//! the end of the attack window the final configuration is judged on the
//! *honest* subgraph (`graph::predicates`): which honest nodes violate
//! the protocol's predicate, and the containment radius — the maximum BFS
//! distance from the compromised set to any perturbed honest node.
//!
//! The headline is the asymmetry the two predicates force: SMM's matched
//! edge is *mutual* (i points at j and j points back), so an adversary
//! can capture a neighbor and dangle that neighbor's former partner, but
//! the damage stops there — radius ≈ 2 regardless of attack length. SMI's
//! independence predicate has no such handshake: an oscillating member at
//! the top of an ID gradient re-decides its neighbor, which re-decides the
//! next, and the perturbation wave travels one hop per round — radius
//! grows with the attack window (unbounded containment).

use super::e18_runtime_scaling::geometric_radius;
use super::Report;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_analysis::Table;
use selfstab_core::smm::{Pointer, Smm};
use selfstab_core::Smi;
use selfstab_engine::active::Schedule;
use selfstab_engine::adversary::ByzStrategy;
use selfstab_engine::protocol::{InitialState, Protocol, WireState};
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Graph, Ids, Node};
use selfstab_runtime::{FaultPlan, RuntimeExecutor};

const SHARDS: usize = 4;

/// Containment of one adversarial run, judged on the honest subgraph.
struct Cell {
    perturbed: usize,
    radius: usize,
    honest_legitimate: bool,
}

/// Deterministic compromised set: `k` nodes spread from the high-ID end
/// (on a path this puts one at the MIS anchor, the cascade-prone spot).
fn byz_nodes(n: usize, k: usize) -> Vec<Node> {
    (0..k).map(|i| Node((n - 1 - i * n / k) as u32)).collect()
}

/// Run `window` rounds from `init` under a hot Byzantine adversary and
/// measure the containment of the configuration at the cut.
fn attack_from<P: Protocol>(
    g: &Graph,
    proto: &P,
    init: InitialState<P::State>,
    byz: &[Node],
    strategy: ByzStrategy,
    seed: u64,
    window: usize,
) -> Cell
where
    P::State: WireState,
{
    let plan = FaultPlan::new(seed).with_byz(byz.to_vec(), strategy);
    // No `until`: the adversary stays hot, so the run cannot stabilize and
    // is cut at exactly `window` rounds — the configuration under attack.
    let run = RuntimeExecutor::new(g, proto, SHARDS)
        .with_chaos(plan)
        .run(init, window)
        .expect("adversarial run failed");
    let mut mask = vec![false; g.n()];
    for b in byz {
        mask[b.index()] = true;
    }
    let c = proto
        .containment(g, &run.final_states, &mask)
        .expect("protocol must define containment");
    Cell {
        perturbed: c.perturbed.len(),
        radius: c.radius,
        honest_legitimate: c.honest_legitimate(),
    }
}

/// Stabilize cleanly from a random init: the legitimate fixpoint every
/// sweep cell attacks (computed once per graph × protocol).
fn clean_fixpoint<P: Protocol>(g: &Graph, proto: &P) -> Vec<P::State> {
    let clean = SyncExecutor::new(g, proto)
        .with_schedule(Schedule::Active)
        .run(InitialState::Random { seed: 24 }, 6 * g.n() + 16);
    assert!(clean.stabilized(), "clean run must stabilize (n={})", g.n());
    clean.final_states
}

fn radius_str(c: &Cell) -> String {
    if c.radius == usize::MAX {
        "∞".into()
    } else {
        format!("{}", c.radius)
    }
}

/// Run E24: byz-count × strategy × topology sweep, then the attack-window
/// growth probe that separates the two predicates.
pub fn run(
    sizes: &[usize],
    byz_counts: &[usize],
    window: usize,
    probe_windows: &[usize],
) -> Report {
    let strategies = [
        ByzStrategy::RandomPointer,
        ByzStrategy::MimicNeighbor,
        ByzStrategy::Oscillate,
    ];
    let mut table = Table::new(&[
        "n",
        "topology",
        "byz",
        "strategy",
        "SMM perturbed",
        "SMM radius",
        "SMM honest-legit",
        "SMI perturbed",
        "SMI radius",
        "SMI honest-legit",
    ]);
    let mut smm_radius_max = 0usize;
    for &n in sizes {
        let disk = generators::random_geometric_connected(
            n,
            geometric_radius(n),
            &mut StdRng::seed_from_u64(0xe24),
        );
        let path = generators::path(n);
        for (topology, g) in [("unit-disk", &disk), ("path", &path)] {
            let smm = Smm::paper(Ids::identity(g.n()));
            let smi = Smi::new(Ids::identity(g.n()));
            let smm_clean = clean_fixpoint(g, &smm);
            let smi_clean = clean_fixpoint(g, &smi);
            for &k in byz_counts {
                let byz = byz_nodes(g.n(), k);
                for strategy in strategies {
                    let m = attack_from(
                        g,
                        &smm,
                        InitialState::Explicit(smm_clean.clone()),
                        &byz,
                        strategy,
                        0xe24,
                        window,
                    );
                    let i = attack_from(
                        g,
                        &smi,
                        InitialState::Explicit(smi_clean.clone()),
                        &byz,
                        strategy,
                        0xe24,
                        window,
                    );
                    assert!(
                        m.radius != usize::MAX,
                        "SMM perturbation must be attributable to the byz set \
                         ({topology}, n={n}, byz={k}, {strategy:?})"
                    );
                    smm_radius_max = smm_radius_max.max(m.radius);
                    table.row_strings(vec![
                        format!("{n}"),
                        topology.into(),
                        format!("{k}"),
                        strategy.name().into(),
                        format!("{}", m.perturbed),
                        radius_str(&m),
                        format!("{}", m.honest_legitimate),
                        format!("{}", i.perturbed),
                        radius_str(&i),
                        format!("{}", i.honest_legitimate),
                    ]);
                }
            }
        }
    }
    // SMM's mutual-pointer predicate is the containment mechanism: a
    // captured neighbor plus its dangled ex-partner is radius 2, and the
    // handshake stops anything further. Assert the headline.
    assert!(
        smm_radius_max <= 3,
        "SMM containment radius must stay local, got {smm_radius_max}"
    );

    // Attack-window growth probe: one oscillating Byzantine node at the
    // high-ID end of a path, starting from the *strict-alternation*
    // fixpoints — zero slack, so the wave's reach is the dynamics' reach.
    // (A random-init fixpoint has slack patterns like `…●○○●…` that
    // absorb SMI's wave at an instance-dependent distance.)
    let probe_n = sizes[0];
    let g = generators::path(probe_n);
    let byz = vec![Node((probe_n - 1) as u32)];
    // SMI: member iff same parity as the top node — a maximal independent
    // set. SMM: mutual pairs from the top (n-1↔n-2, n-3↔n-4, …; node 0
    // stays null when n is odd) — a maximal matching.
    let mis_init: Vec<bool> = (0..probe_n)
        .map(|i| (probe_n - 1 - i).is_multiple_of(2))
        .collect();
    let mut smm_init: Vec<Pointer> = vec![Pointer::NULL; probe_n];
    let mut hi = probe_n;
    while hi >= 2 {
        smm_init[hi - 1] = Pointer(Some(Node((hi - 2) as u32)));
        smm_init[hi - 2] = Pointer(Some(Node((hi - 1) as u32)));
        hi -= 2;
    }
    let smm = Smm::paper(Ids::identity(probe_n));
    let smi = Smi::new(Ids::identity(probe_n));
    assert!(smm.is_legitimate(&g, &smm_init) && smi.is_legitimate(&g, &mis_init));
    // Oscillate draws each parity's state independently, so for a small
    // local state space the two can coincide (a static — and therefore
    // no-op — adversary). Pick a plan seed whose oscillation pair
    // actually differs for the probe node under both protocols.
    let flaps = |seed: u64| {
        use selfstab_engine::adversary::ByzPlan;
        let bp = ByzPlan::new(byz.clone(), ByzStrategy::Oscillate, seed);
        bp.state_for(&smi, &g, byz[0], 0, &mis_init) != bp.state_for(&smi, &g, byz[0], 1, &mis_init)
            && bp.state_for(&smm, &g, byz[0], 0, &smm_init)
                != bp.state_for(&smm, &g, byz[0], 1, &smm_init)
    };
    let probe_seed = (0u64..256)
        .find(|&s| flaps(s))
        .expect("some seed oscillates the probe node");
    let mut probe = Table::new(&["window", "SMM radius", "SMI radius"]);
    let mut smi_first = None;
    let mut smi_last = 0usize;
    for &w in probe_windows {
        let m = attack_from(
            &g,
            &smm,
            InitialState::Explicit(smm_init.clone()),
            &byz,
            ByzStrategy::Oscillate,
            probe_seed,
            w,
        );
        let i = attack_from(
            &g,
            &smi,
            InitialState::Explicit(mis_init.clone()),
            &byz,
            ByzStrategy::Oscillate,
            probe_seed,
            w,
        );
        smi_first.get_or_insert(i.radius);
        smi_last = i.radius;
        probe.row_strings(vec![format!("{w}"), radius_str(&m), radius_str(&i)]);
    }
    assert!(
        smi_last > smi_first.unwrap_or(0),
        "SMI perturbation radius must grow with the attack window"
    );

    let body = format!(
        "Each cell: stabilize cleanly (serial, random init), then rewrite the\n\
         states of a seeded `byz` node set every round for {window} rounds on the\n\
         sharded runtime ({SHARDS} shards, active schedule) and judge the cut\n\
         configuration on the honest subgraph. `perturbed` counts honest nodes\n\
         violating the protocol predicate restricted to honest nodes; `radius`\n\
         is the max BFS distance from the compromised set to a perturbed node.\n\n{}\n\n\
         SMM's containment radius stayed ≤ {smm_radius_max} in every cell: the matched-edge\n\
         predicate is a mutual handshake, so an adversary captures at most its\n\
         own neighbors (radius 1) and dangles their ex-partners (radius 2) —\n\
         asserted ≤ 3 above. SMI's independence predicate has no handshake, and\n\
         the attack-window probe (one oscillating Byzantine node at the top of\n\
         a path's ID gradient, n={probe_n}, started from the zero-slack\n\
         strict-alternation fixpoints) shows the difference directly:\n\n{}\n\n\
         SMI's perturbation wave moves ≈ one hop per round — its containment\n\
         radius is bounded only by the attack length (Masuzawa–Tixeuil-style\n\
         unbounded contamination), while SMM's never leaves the 2-neighborhood.",
        table.to_markdown(),
        probe.to_markdown(),
    );
    Report {
        id: "E24",
        title: "Extension: Byzantine containment — compromised nodes, rewrite strategies, containment radius",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e24_smm_contained_smi_not() {
        // run() asserts SMM radius ≤ 3 in every cell and SMI radius growth
        // on the path probe; surviving a small sweep is the test.
        let r = super::run(&[300], &[1, 4], 16, &[8, 24]);
        assert!(r.body.contains("SMM radius"), "{}", r.body);
    }
}
