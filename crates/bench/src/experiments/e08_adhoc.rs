//! E8 — the beacon model: rounds in the paper's sense emerge from beacons.
//!
//! For each suite instance we run the discrete-event beacon simulator and
//! compare against the abstract synchronous engine:
//!
//! * with **zero jitter** the final states must be identical and the
//!   stabilization time in beacon periods must equal the engine's rounds;
//! * with **±5 % jitter** the execution is only approximately synchronous —
//!   we report stabilization periods and verify the fixpoint is still a
//!   maximal matching;
//! * message cost: beacons and deliveries until quiescence.

use super::Report;
use crate::suite::Suite;
use selfstab_adhoc::{BeaconConfig, BeaconSim, Topology};
use selfstab_analysis::Table;
use selfstab_core::smm::Smm;
use selfstab_engine::protocol::{InitialState, Protocol};
use selfstab_engine::sync::SyncExecutor;

/// Run E8.
pub fn run(n: usize, reps: u64) -> Report {
    let suite = Suite::default();
    let mut table = Table::new(&[
        "topology",
        "n",
        "engine rounds",
        "beacon periods (jitter 0)",
        "exact match",
        "beacon periods (jitter 5%)",
        "beacons sent",
        "deliveries",
    ]);
    let mut exact = 0u64;
    let mut cells = 0u64;
    for inst in suite.instances(n) {
        let n_actual = inst.graph.n();
        let smm = Smm::paper(inst.ids.clone());
        for rep in 0..reps {
            let seed = suite.rep_seed(&inst.label, n_actual, rep ^ 0xe8);
            let sync = SyncExecutor::new(&inst.graph, &smm)
                .run(InitialState::Random { seed }, n_actual + 1);
            assert!(sync.stabilized());

            let cfg0 = BeaconConfig {
                seed,
                ..BeaconConfig::default()
            };
            let sim0 = BeaconSim::new(
                &smm,
                Topology::Static(inst.graph.clone()),
                InitialState::Random { seed },
                cfg0,
            )
            .run(5, 3_600_000_000);
            assert!(sim0.quiesced);
            let is_exact = sim0.final_states == sync.final_states
                && sim0.stabilization_periods as usize == sync.rounds();
            cells += 1;
            if is_exact {
                exact += 1;
            }

            let cfgj = BeaconConfig {
                seed,
                ..BeaconConfig::default()
            }
            .with_jitter(0.05);
            let simj = BeaconSim::new(
                &smm,
                Topology::Static(inst.graph.clone()),
                InitialState::Random { seed },
                cfgj,
            )
            .run(5, 3_600_000_000);
            let jitter_ok = simj.quiesced && smm.is_legitimate(&inst.graph, &simj.final_states);

            if rep == 0 {
                table.row_strings(vec![
                    inst.label.clone(),
                    n_actual.to_string(),
                    sync.rounds().to_string(),
                    format!("{:.0}", sim0.stabilization_periods),
                    if is_exact {
                        "yes".into()
                    } else {
                        "**NO**".into()
                    },
                    if jitter_ok {
                        format!("{:.1}", simj.stabilization_periods)
                    } else {
                        "**not legitimate**".into()
                    },
                    sim0.beacons_sent.to_string(),
                    sim0.deliveries.to_string(),
                ]);
            }
        }
    }
    let body = format!(
        "Zero-jitter beacon executions matched the abstract synchronous engine exactly in\n\
         {exact}/{cells} runs (states and stabilization periods). One representative row per\n\
         topology below; jittered runs are approximately synchronous but still reach a\n\
         legitimate fixpoint.\n\n{}",
        table.to_markdown()
    );
    Report {
        id: "E8",
        title: "Beacon rounds ≙ synchronous rounds (Section 2 system model)",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_exact_in_every_cell() {
        let r = super::run(12, 2);
        assert!(!r.body.contains("**NO**"));
        assert!(!r.body.contains("not legitimate"));
    }
}
