//! E22 (extension) — the resident service under sustained churn: mutation
//! ingest throughput, query throughput, and per-event re-stabilization
//! latency.
//!
//! The overlay-maintenance service (`selfstab-service`) keeps a matching
//! or independent set continuously legitimate while the topology mutates
//! underneath it, re-running the daemon only on the closed neighborhoods
//! an event perturbed. This experiment drives a long seeded event stream
//! (random edge toggles with occasional node leave/rejoin) through
//! [`OverlayService`] on the paper's topologies and measures what a
//! deployment would ask: how many mutations per second the service
//! absorbs, how fast queries answer while churn is in flight, and the
//! per-event recovery-round distribution (p50/p99/max — Theorem 1/2 says
//! max ≤ n+2, the table shows the observed tail is *constant*, because a
//! single event only perturbs a bounded region).

use super::e18_runtime_scaling::geometric_radius;
use super::Report;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use selfstab_analysis::Table;
use selfstab_core::{Smi, Smm};
use selfstab_engine::protocol::InitialState;
use selfstab_graph::{generators, Graph, Ids};
use selfstab_service::{Mutation, OverlayProtocol, OverlayService, SimClock};
use std::time::Instant;

fn topology(name: &str, n: usize) -> Graph {
    match name {
        "path" => generators::path(n),
        "star" => generators::star(n),
        "unit-disk" => generators::random_geometric_connected(
            n,
            geometric_radius(n),
            &mut StdRng::seed_from_u64(0xe22),
        ),
        other => unreachable!("unknown E22 topology {other}"),
    }
}

/// Draw the next valid mutation against the live graph: mostly edge
/// toggles, with an occasional node crash and rejoin — the ad-hoc churn
/// model from the paper's motivation.
pub(crate) fn next_mutation(g: &Graph, rng: &mut StdRng) -> Mutation {
    let n = g.n();
    match rng.random_range(0..10u32) {
        8 => Mutation::NodeLeave {
            v: rng.random_range(0..n),
        },
        9 => {
            let v = rng.random_range(0..n);
            let attach: Vec<usize> = (0..2)
                .map(|_| rng.random_range(0..n))
                .filter(|w| *w != v)
                .collect();
            Mutation::NodeJoin { v, attach }
        }
        _ => loop {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a == b {
                continue;
            }
            break if g.has_edge(a.into(), b.into()) {
                Mutation::EdgeDown { a, b }
            } else {
                Mutation::EdgeUp { a, b }
            };
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn churn_cell<P: OverlayProtocol>(
    table: &mut Table,
    proto: &P,
    topo: &str,
    n: usize,
    events: usize,
    queries: usize,
    rng: &mut StdRng,
) {
    let g = topology(topo, n);
    let (n, m0) = (g.n(), g.m());
    let clock = SimClock::new();
    let mut svc = OverlayService::new(g, proto, InitialState::Default, 0);
    svc.stabilize(&clock, &mut ());
    assert!(svc.is_converged(), "bootstrap must converge");

    let mut perturbed_sum = 0usize;
    let start = Instant::now();
    for _ in 0..events {
        let mutation = next_mutation(svc.graph(), rng);
        svc.enqueue(mutation);
        for r in svc.drain(&clock, &mut ()) {
            let rec = r.expect("generated mutations are valid");
            assert!(rec.converged, "per-event recovery within budget");
            perturbed_sum += rec.perturbed;
        }
    }
    let mutate_time = start.elapsed();

    // Query throughput over the final (still churned-into) structure:
    // membership point lookups plus the status probe a monitoring client
    // would poll. The O(n) census is timed once, separately.
    let start = Instant::now();
    for i in 0..queries {
        let node = (i * 7919) % n;
        let member = svc.membership_json(Some(node)).expect("node in range");
        assert!(member.get("node").is_some());
        let status = svc.status_json();
        assert!(status.get("converged").is_some());
    }
    let query_time = start.elapsed();
    let start = Instant::now();
    let census = svc.census_json();
    let census_time = start.elapsed();
    assert!(matches!(census, selfstab_json::Json::Object(_)));

    assert!(
        proto.is_legitimate(svc.graph(), svc.states()),
        "service is legitimate after the full event stream"
    );
    let h = svc.recovery_hist();
    table.row_strings(vec![
        proto.name().to_string(),
        topo.to_string(),
        format!("{n}"),
        format!("{m0}"),
        format!("{events}"),
        format!("{:.0}", events as f64 / mutate_time.as_secs_f64()),
        format!("{:.1}", perturbed_sum as f64 / events as f64),
        format!("{}", h.quantile(0.5).unwrap_or(0)),
        format!("{}", h.quantile(0.99).unwrap_or(0)),
        format!("{}", h.max_value().unwrap_or(0)),
        format!("{:.0}", (2 * queries) as f64 / query_time.as_secs_f64()),
        format!("{:.1}", census_time.as_secs_f64() * 1e3),
    ]);
}

/// Run E22: sustained churn × query throughput for SMM and SMI on the
/// paper topologies.
pub fn run(sizes: &[usize], events: usize, queries: usize) -> Report {
    let mut table = Table::new(&[
        "protocol",
        "topology",
        "n",
        "m₀",
        "events",
        "events/s",
        "mean perturbed",
        "p50 rounds",
        "p99 rounds",
        "max rounds",
        "queries/s",
        "census ms",
    ]);
    for &n in sizes {
        let smm = Smm::paper(Ids::identity(n));
        let smi = Smi::new(Ids::identity(n));
        for topo in ["path", "star", "unit-disk"] {
            let mut rng = StdRng::seed_from_u64(0x22);
            churn_cell(&mut table, &smm, topo, n, events, queries, &mut rng);
            let mut rng = StdRng::seed_from_u64(0x22);
            churn_cell(&mut table, &smi, topo, n, events, queries, &mut rng);
        }
    }
    let body = format!(
        "The resident overlay service under a seeded churn stream (80% random edge\n\
         toggles, 10% node crash, 10% rejoin with two attach links), default states,\n\
         per-event budget n+2. `events/s` counts full ingest→re-stabilize cycles;\n\
         `mean perturbed` is the average active-set seed size (nodes whose closed\n\
         neighborhood an event touched); the round quantiles come from the service's\n\
         recovery histogram. `queries/s` interleaves membership point lookups with\n\
         status probes against the live structure; the O(n) census is timed once.\n\
         SMM recovery is local: a single event flips a bounded region, so its p99\n\
         stays constant as n grows — that locality is what makes the resident\n\
         service viable at 10\u{2075} nodes. SMI is *not* always local: on the path,\n\
         cutting an edge next to a member can re-alternate the independent set in\n\
         a domino chain down the line, and the p99 grows with n (still within the\n\
         Theorem 2 budget, and still cheap per round because the active set tracks\n\
         only the moving frontier).\n\n{}",
        table.to_markdown()
    );
    Report {
        id: "E22",
        title: "Extension: resident service — churn ingest and query throughput",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e22_runs_and_reports_bounded_recovery() {
        let r = super::run(&[300], 40, 20);
        assert!(r.body.contains("events/s"), "{}", r.body);
        // 6 cells: 2 protocols × 3 topologies.
        assert_eq!(r.body.matches("| 300 |").count(), 6, "{}", r.body);
    }
}
