//! E18 (extension) — sharded runtime scaling: rounds-to-stabilize and
//! throughput vs shard count on random geometric graphs.
//!
//! The sharded mailbox runtime (`selfstab-runtime`) implements the same
//! synchronous round as `SyncExecutor`, so rounds-to-stabilize must be
//! *identical* at every shard count — the experiment asserts this. What
//! changes with the shard count is wall-clock cost: guard evaluation
//! parallelizes across workers while cross-shard beacon traffic grows with
//! the partition cut. Random geometric graphs are the natural testbed —
//! they are the paper's ad-hoc-network model and their locality is what a
//! coarsening-based partition exploits.

use super::Report;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_analysis::Table;
use selfstab_core::smm::Smm;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Ids};
use selfstab_runtime::RuntimeExecutor;
use std::time::{Duration, Instant};

/// Connectivity-safe unit-disk radius for `n` uniform points in the unit
/// square: ~1.4× the connectivity threshold `sqrt(ln n / (π n))`.
pub(crate) fn geometric_radius(n: usize) -> f64 {
    let n = n as f64;
    (1.4 * (n.ln() / (std::f64::consts::PI * n)).sqrt()).min(1.0)
}

fn fmt_time(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

fn fmt_rate(node_rounds: f64, d: Duration) -> String {
    let rate = node_rounds / d.as_secs_f64().max(f64::MIN_POSITIVE);
    if rate >= 1e6 {
        format!("{:.1} M", rate / 1e6)
    } else {
        format!("{:.0} k", rate / 1e3)
    }
}

/// Run E18: for each graph size, time the serial executor and the sharded
/// runtime at each shard count on the same graph and initial state.
pub fn run(sizes: &[usize], shard_counts: &[usize]) -> Report {
    let mut table = Table::new(&[
        "n",
        "edges",
        "executor",
        "cut edges",
        "rounds",
        "wall time",
        "node·rounds/s",
    ]);
    for &n in sizes {
        let radius = geometric_radius(n);
        let g =
            generators::random_geometric_connected(n, radius, &mut StdRng::seed_from_u64(0xe18));
        let smm = Smm::paper(Ids::identity(g.n()));
        let init = InitialState::Random { seed: 18 };
        let max_rounds = g.n() + 2;

        let start = Instant::now();
        let serial = SyncExecutor::new(&g, &smm).run(init.clone(), max_rounds);
        let serial_time = start.elapsed();
        assert!(serial.stabilized(), "serial run must stabilize (n={n})");
        let node_rounds = (g.n() * serial.rounds()) as f64;
        table.row_strings(vec![
            format!("{}", g.n()),
            format!("{}", g.m()),
            "serial".into(),
            "—".into(),
            format!("{}", serial.rounds()),
            fmt_time(serial_time),
            fmt_rate(node_rounds, serial_time),
        ]);

        for &k in shard_counts {
            let exec = RuntimeExecutor::new(&g, &smm, k);
            let cut = exec.partition().cut_edges(&g).len();
            let start = Instant::now();
            let run = exec
                .run(init.clone(), max_rounds)
                .expect("sharded run failed");
            let elapsed = start.elapsed();
            assert!(
                run.stabilized(),
                "sharded run must stabilize (n={n}, k={k})"
            );
            assert_eq!(
                run.rounds(),
                serial.rounds(),
                "sharded rounds must match serial (n={n}, k={k})"
            );
            table.row_strings(vec![
                format!("{}", g.n()),
                format!("{}", g.m()),
                format!("runtime ({k} shards)"),
                format!("{cut}"),
                format!("{}", run.rounds()),
                fmt_time(elapsed),
                fmt_rate(node_rounds, elapsed),
            ]);
        }
    }
    let body = format!(
        "SMM (min-id policies) on connected random geometric graphs (uniform points in\n\
         the unit square, radius ≈ 1.4·connectivity threshold), one seeded graph and\n\
         initial state per size. The sharded runtime reproduces the serial round count\n\
         exactly at every shard count (asserted); the table therefore isolates the cost\n\
         of distribution — per-round barriers plus beacon frames across the partition\n\
         cut — against the parallel speedup of guard evaluation.\n\n{}",
        table.to_markdown()
    );
    Report {
        id: "E18",
        title: "Extension: sharded runtime scaling on random geometric graphs",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e18_rounds_match_across_shards() {
        // The run() body asserts serial/sharded round equality; surviving it
        // on a real (small) geometric graph is the test.
        let r = super::run(&[200], &[1, 2, 4]);
        assert!(r.body.contains("runtime (4 shards)"), "{}", r.body);
    }
}
