//! E23 (extension) — sharded vs serial re-convergence inside the resident
//! service: per-event recovery wall-clock on *large* perturbations.
//!
//! PR 8 gave [`OverlayService`] a pluggable convergence backend: the same
//! event drain can run through the serial step loop or through the sharded
//! [`RuntimeExecutor`](selfstab_runtime::RuntimeExecutor)
//! (`serve --shards N`), seeded with exactly the
//! perturbed closed neighborhoods. The consistency proptests prove the two
//! backends are state- and round-identical; this experiment measures when
//! the sharded drain actually *pays*. Three recovery shapes span the range:
//!
//! * **cold start** (SMM and SMI, arbitrary random states on the unit-disk
//!   graph): every node is perturbed and repair runs tens of rounds — the
//!   E18-shaped workload, where per-wave setup amortizes across rounds;
//! * **star hub churn** (SMM and SMI): the hub leaves and rejoins,
//!   perturbing every closed neighborhood at once — maximal frontier
//!   *width*, but repair completes in 1–2 rounds;
//! * **local repair contrast** (unit-disk blackout for SMM, unit-disk edge
//!   toggle for SMI): each event perturbs a bounded region — the paper's
//!   locality means the serial loop finishes in microseconds.
//!
//! (The SMI-on-a-path domino from E22 is deliberately absent: an
//! increasing-ID path bootstraps in ~n rounds, and 10⁵ barrier-paced
//! runtime rounds measure the §7 per-round overhead — E18's column —
//! not the event drain this experiment is about.)
//!
//! Every cell asserts the oracle from the ISSUE: identical per-event
//! recovery rounds and identical final states across all backends, with
//! zero silent fallbacks to serial.

use super::e18_runtime_scaling::geometric_radius;
use super::Report;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_analysis::Table;
use selfstab_core::{Smi, Smm};
use selfstab_engine::protocol::InitialState;
use selfstab_graph::{generators, Graph, Ids, Node};
use selfstab_service::{Backend, Mutation, OverlayProtocol, OverlayService, SimClock};
use std::time::Instant;

/// Hub leave + rejoin-with-all-leaves, repeated. Perturbs all n closed
/// neighborhoods per event.
fn star_churn_script(n: usize, cycles: usize) -> Vec<Mutation> {
    let mut script = Vec::new();
    for _ in 0..cycles {
        script.push(Mutation::NodeLeave { v: 0 });
        script.push(Mutation::NodeJoin {
            v: 0,
            attach: (1..n).collect(),
        });
    }
    script
}

/// A scatter blackout: greedily pick `k` pairwise non-adjacent nodes, then
/// crash them all and rejoin each with its original neighbor list. Pairwise
/// non-adjacency means no rejoin ever references a still-absent node, so
/// every mutation in the script is valid regardless of drain order.
fn blackout_script(g: &Graph, k: usize, cycles: usize) -> Vec<Mutation> {
    let mut chosen: Vec<Node> = Vec::new();
    let mut blocked = vec![false; g.n()];
    for v in g.nodes() {
        if chosen.len() == k {
            break;
        }
        if blocked[v.index()] {
            continue;
        }
        chosen.push(v);
        blocked[v.index()] = true;
        for &w in g.neighbors(v) {
            blocked[w.index()] = true;
        }
    }
    let mut script = Vec::new();
    for _ in 0..cycles {
        for &v in &chosen {
            script.push(Mutation::NodeLeave { v: v.index() });
        }
        for &v in &chosen {
            script.push(Mutation::NodeJoin {
                v: v.index(),
                attach: g.neighbors(v).iter().map(|w| w.index()).collect(),
            });
        }
    }
    script
}

/// Toggle one fixed edge of the graph: a minimal, strictly local event
/// (the converged structure repairs within a bounded neighborhood).
fn edge_toggle_script(g: &Graph, cycles: usize) -> Vec<Mutation> {
    let a = Node(0);
    let b = g.neighbors(a)[0];
    let (a, b) = (a.index(), b.index());
    let mut script = Vec::new();
    for _ in 0..cycles {
        script.push(Mutation::EdgeDown { a, b });
        script.push(Mutation::EdgeUp { a, b });
    }
    script
}

struct CellOutcome {
    /// Per-event recovery rounds, in drain order.
    rounds: Vec<usize>,
    /// Final converged states.
    states_key: String,
    perturbed_sum: usize,
    fallbacks: u64,
    elapsed_ms: f64,
}

/// Drive one backend through the scripted event stream and time the drain
/// (ingest + seeded re-convergence), excluding bootstrap.
fn run_backend<P: OverlayProtocol>(
    proto: &P,
    g: &Graph,
    script: &[Mutation],
    backend: Backend,
) -> CellOutcome {
    let clock = SimClock::new();
    let mut svc =
        OverlayService::new(g.clone(), proto, InitialState::Default, 0).with_backend(backend);
    svc.stabilize(&clock, &mut ());
    assert!(svc.is_converged(), "bootstrap must converge");

    let mut rounds = Vec::with_capacity(script.len());
    let mut perturbed_sum = 0usize;
    let start = Instant::now();
    for mutation in script {
        svc.enqueue(mutation.clone());
        for r in svc.drain(&clock, &mut ()) {
            let rec = r.expect("scripted mutations are valid");
            assert!(rec.converged, "per-event recovery within budget");
            rounds.push(rec.recovery_rounds);
            perturbed_sum += rec.perturbed;
        }
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        proto.is_legitimate(svc.graph(), svc.states()),
        "service is legitimate after the event stream"
    );
    CellOutcome {
        rounds,
        states_key: format!("{:?}", svc.states()),
        perturbed_sum,
        fallbacks: svc.backend_fallbacks(),
        elapsed_ms,
    }
}

/// Cold-start recovery: time `stabilize()` from the same arbitrary random
/// states on every backend. One "event" whose perturbed set is all of V and
/// whose repair runs tens of rounds — the shape where per-wave setup can
/// amortize.
fn bootstrap_cell<P: OverlayProtocol>(
    table: &mut Table,
    proto: &P,
    g: &Graph,
    shard_counts: &[usize],
) {
    let run_boot = |backend: Backend| {
        let clock = SimClock::new();
        let init = InitialState::Random { seed: 0xe23 };
        let mut svc = OverlayService::new(g.clone(), proto, init, 0).with_backend(backend);
        let start = Instant::now();
        let rounds = svc.stabilize(&clock, &mut ()).recovery_rounds;
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(svc.is_converged(), "cold start must converge");
        assert_eq!(svc.backend_fallbacks(), 0, "no silent serial fallback");
        (rounds, format!("{:?}", svc.states()), elapsed_ms)
    };
    let (serial_rounds, serial_states, serial_ms) = run_boot(Backend::Serial);
    let mut sharded_ms = Vec::new();
    for &shards in shard_counts {
        let (rounds, states, ms) = run_boot(Backend::Sharded {
            shards,
            channel_cap: None,
        });
        assert_eq!(rounds, serial_rounds, "cold start rounds diverged");
        assert_eq!(states, serial_states, "cold start states diverged");
        sharded_ms.push(ms);
    }
    let best = sharded_ms.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut row = vec![
        proto.name().to_string(),
        "cold start".to_string(),
        format!("{}", g.n()),
        "1".to_string(),
        format!("{}", g.n()),
        format!("{serial_rounds}"),
        format!("{serial_ms:.2}"),
    ];
    for ms in &sharded_ms {
        row.push(format!("{ms:.2}"));
    }
    row.push(format!("{:.2}x", serial_ms / best));
    table.row_strings(row);
}

fn cell<P: OverlayProtocol>(
    table: &mut Table,
    proto: &P,
    scenario: &str,
    g: &Graph,
    script: &[Mutation],
    shard_counts: &[usize],
) {
    let events = script.len();
    let serial = run_backend(proto, g, script, Backend::Serial);
    let mut sharded_ms = Vec::new();
    for &shards in shard_counts {
        let out = run_backend(
            proto,
            g,
            script,
            Backend::Sharded {
                shards,
                channel_cap: None,
            },
        );
        // The E23 oracle: the sharded drain is round-identical per event
        // and lands in the identical final configuration, with no silent
        // serial fallback hiding a runtime failure.
        assert_eq!(
            out.rounds, serial.rounds,
            "{scenario}/{shards}: per-event recovery rounds diverged"
        );
        assert_eq!(
            out.states_key, serial.states_key,
            "{scenario}/{shards}: final states diverged"
        );
        assert_eq!(out.fallbacks, 0, "{scenario}/{shards}: fell back to serial");
        sharded_ms.push(out.elapsed_ms);
    }
    let best = sharded_ms.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut row = vec![
        proto.name().to_string(),
        scenario.to_string(),
        format!("{}", g.n()),
        format!("{events}"),
        format!("{:.0}", serial.perturbed_sum as f64 / events as f64),
        format!("{}", serial.rounds.iter().sum::<usize>()),
        format!("{:.2}", serial.elapsed_ms / events as f64),
    ];
    for ms in &sharded_ms {
        row.push(format!("{:.2}", ms / events as f64));
    }
    row.push(format!("{:.2}x", serial.elapsed_ms / best));
    table.row_strings(row);
}

/// Run E23: serial vs sharded drain wall-clock across the three event
/// shapes, at `n` nodes with `cycles` churn cycles per scenario.
pub fn run(n: usize, shard_counts: &[usize], cycles: usize) -> Report {
    let mut header = vec![
        "protocol".to_string(),
        "scenario".to_string(),
        "n".to_string(),
        "events".to_string(),
        "mean perturbed".to_string(),
        "rounds".to_string(),
        "serial ms/ev".to_string(),
    ];
    for &s in shard_counts {
        header.push(format!("{s}-shard ms/ev"));
    }
    header.push("best speedup".to_string());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let smm = Smm::paper(Ids::identity(n));
    let smi = Smi::new(Ids::identity(n));

    let disk = generators::random_geometric_connected(
        n,
        geometric_radius(n),
        &mut StdRng::seed_from_u64(0xe23),
    );
    bootstrap_cell(&mut table, &smm, &disk, shard_counts);
    bootstrap_cell(&mut table, &smi, &disk, shard_counts);

    let star = generators::star(n);
    let churn = star_churn_script(n, cycles);
    cell(
        &mut table,
        &smm,
        "star hub churn",
        &star,
        &churn,
        shard_counts,
    );
    cell(
        &mut table,
        &smi,
        "star hub churn",
        &star,
        &churn,
        shard_counts,
    );

    let k = (n / 100).max(4);
    cell(
        &mut table,
        &smm,
        "unit-disk blackout",
        &disk,
        &blackout_script(&disk, k, cycles),
        shard_counts,
    );

    cell(
        &mut table,
        &smi,
        "unit-disk edge toggle",
        &disk,
        &edge_toggle_script(&disk, cycles),
        shard_counts,
    );

    let body = format!(
        "Serial vs sharded event drain inside the resident service, same seeded\n\
         active-set semantics on both sides (the consistency suite proves them\n\
         state- and round-identical; every cell here re-asserts per-event round\n\
         equality and final-state equality before timing is reported). `mean\n\
         perturbed` is the active-set seed size per event; `rounds` sums per-event\n\
         recovery rounds (identical across backends by assertion). The honest\n\
         reading: at 10\u{2075} nodes the serial drain wins every shape measured\n\
         here, and the sharded column decomposes into two fixed costs the\n\
         serial loop never pays. Per-*wave* setup (partition/state clones,\n\
         channel allocation, scoped worker spawn \u{2014} and, on the cold-start\n\
         rows only, the one-time partition build itself, which the churn\n\
         scenarios pay in the untimed warm-up) dominates short repairs: star\n\
         churn perturbs all n closed neighborhoods but Theorem 1/2 locality\n\
         repairs it in 1\u{2013}2 rounds, far too few to amortize, and the\n\
         microsecond-scale local events are pure overhead. Per-*round*\n\
         barrier pacing (E18's \u{a7}7 column, ~15 ms/round at this scale)\n\
         dominates long repairs: the serial active-set loop pays per round\n\
         only for the frontier that is still moving, while every runtime\n\
         round is a full cross-shard barrier \u{2014} so even SMM's 59-round\n\
         cold start, the widest and longest shape here and the closest row\n\
         to parity, stops short of break-even (and SMI's 11-round cold\n\
         start has too few rounds to bury the partition build). The sizing\n\
         guide for `selfstab serve` today is\n\
         therefore: keep the serial default. `--shards` is\n\
         correctness-proven capacity (identical states and rounds, by\n\
         construction and by proptest) whose payoff needs the ROADMAP's next\n\
         step \u{2014} a persistent worker pool with frontier-aware barriers, so\n\
         waves stop re-paying setup and quiet shards stop re-paying the\n\
         barrier \u{2014} or guards expensive enough that evaluation, not\n\
         coordination, is the bill.\n\n{}",
        table.to_markdown()
    );
    Report {
        id: "E23",
        title: "Extension: sharded vs serial re-convergence in the resident service",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e23_runs_and_asserts_backend_equivalence() {
        let r = super::run(300, &[2, 4], 1);
        assert!(r.body.contains("best speedup"), "{}", r.body);
        // Cold-start and star-churn rows for both protocols, one contrast
        // row each.
        assert_eq!(r.body.matches("| cold start |").count(), 2, "{}", r.body);
        assert_eq!(
            r.body.matches("| star hub churn |").count(),
            2,
            "{}",
            r.body
        );
        assert_eq!(
            r.body.matches("| unit-disk blackout |").count(),
            1,
            "{}",
            r.body
        );
        assert_eq!(
            r.body.matches("| unit-disk edge toggle |").count(),
            1,
            "{}",
            r.body
        );
    }
}
