//! E2 — Theorem 2: SMI stabilizes in `O(n)` rounds.
//!
//! Two parts:
//! 1. the suite sweep (random IDs, random initial states) against the `n+2`
//!    envelope, and
//! 2. the adversarial construction from the proof sketch — a path with IDs
//!    increasing along it, started from the all-out state — whose worst-case
//!    rounds must grow **linearly** (checked with a least-squares fit).

use super::Report;
use crate::suite::Suite;
use selfstab_analysis::{linear_fit, Summary, Table};
use selfstab_core::Smi;
use selfstab_engine::protocol::{InitialState, Protocol};
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Ids};

/// Run E2.
pub fn run(sizes: &[usize], reps: u64) -> Report {
    let suite = Suite::default();
    let mut table = Table::new(&[
        "topology",
        "n",
        "rounds mean±std",
        "rounds max",
        "envelope n+2",
        "within",
    ]);
    let mut all_ok = true;
    for &n in sizes {
        for inst in suite.instances(n) {
            let n_actual = inst.graph.n();
            let smi = Smi::new(inst.ids.clone());
            let exec = SyncExecutor::new(&inst.graph, &smi);
            let mut rounds = Vec::new();
            let mut ok = true;
            for rep in 0..reps {
                let seed = suite.rep_seed(&inst.label, n_actual, rep ^ 0xe2);
                let run = exec.run(InitialState::Random { seed }, n_actual + 2);
                ok &= run.stabilized() && smi.is_legitimate(&inst.graph, &run.final_states);
                rounds.push(run.rounds());
            }
            all_ok &= ok;
            let s = Summary::of_usize(rounds.iter().copied());
            table.row_strings(vec![
                inst.label.clone(),
                n_actual.to_string(),
                s.mean_pm_std(),
                format!("{}", s.max as usize),
                (n_actual + 2).to_string(),
                if ok {
                    "yes".into()
                } else {
                    "**VIOLATED**".into()
                },
            ]);
        }
    }

    // Part 2: the linear cascade.
    let mut cascade = Table::new(&["n (path, increasing IDs)", "rounds from all-out"]);
    let mut points = Vec::new();
    for &n in sizes {
        let g = generators::path(n);
        let smi = Smi::new(Ids::identity(n));
        let run = SyncExecutor::new(&g, &smi).run(InitialState::Default, n + 2);
        assert!(run.stabilized());
        cascade.row_strings(vec![n.to_string(), run.rounds().to_string()]);
        points.push((n as f64, run.rounds() as f64));
    }
    let fit_text = if points.len() >= 2 {
        let fit = linear_fit(&points);
        format!(
            "Least-squares fit: rounds ≈ {:.3}·n + {:.2} (R² = {:.4}) — linear, as Theorem 2 predicts.",
            fit.slope, fit.intercept, fit.r2
        )
    } else {
        String::from("(need at least two sizes for a fit)")
    };

    let body = format!(
        "Suite sweep, {reps} random initial states per cell. All runs {}\n\
         within the n + 2 envelope and stabilized to a maximal independent set.\n\n{}\n\
         Adversarial cascade (proof-sketch worst case):\n\n{}\n{}",
        if all_ok { "stayed" } else { "DID NOT stay" },
        table.to_markdown(),
        cascade.to_markdown(),
        fit_text
    );
    Report {
        id: "E2",
        title: "SMI stabilizes in O(n) rounds (Theorem 2)",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_small_sweep_is_clean() {
        let r = super::run(&[8, 16, 32], 5);
        assert!(!r.body.contains("VIOLATED"));
        assert!(r.body.contains("Least-squares fit"));
    }
}
