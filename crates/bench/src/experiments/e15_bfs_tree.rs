//! E15 (extension) — the multicast-tree substrate of the introduction.
//!
//! The self-stabilizing BFS tree: rounds to build from arbitrary states
//! (including the all-ghost `dist = 0` corruption), and the locality of
//! re-convergence after single link events — the "readjust the multicast
//! tree" behaviour the paper's introduction promises.

use super::Report;
use crate::suite::Suite;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_analysis::{Summary, Table};
use selfstab_core::bfs_tree::{BfsTree, TreeState};
use selfstab_engine::protocol::{InitialState, Protocol};
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::mutate::Churn;
use selfstab_graph::Node;

/// Run E15.
pub fn run(sizes: &[usize], reps: u64) -> Report {
    let suite = Suite::default();
    let mut table = Table::new(&[
        "topology",
        "n",
        "build rounds mean±std",
        "ghost-flush rounds",
        "post-event rounds mean",
        "post-event changed mean",
        "all legitimate",
    ]);
    let mut all_ok = true;
    for &n in sizes {
        for inst in suite.instances(n) {
            let n_actual = inst.graph.n();
            let proto = BfsTree::new(Node(0), inst.ids.clone());
            let exec = SyncExecutor::new(&inst.graph, &proto);
            let mut build = vec![];
            let mut ok = true;
            for rep in 0..reps {
                let seed = suite.rep_seed(&inst.label, n_actual, rep ^ 0xe15);
                let run = exec.run(InitialState::Random { seed }, 2 * n_actual + 2);
                ok &= run.stabilized() && proto.is_legitimate(&inst.graph, &run.final_states);
                build.push(run.rounds());
            }
            // Ghost flush: everyone claims distance 0.
            let ghosts = vec![
                TreeState {
                    dist: 0,
                    parent: None
                };
                n_actual
            ];
            let ghost_run = exec.run(InitialState::Explicit(ghosts), 2 * n_actual + 2);
            ok &=
                ghost_run.stabilized() && proto.is_legitimate(&inst.graph, &ghost_run.final_states);
            // Event locality: stabilize, flip one link, re-stabilize.
            let mut post_rounds = vec![];
            let mut post_changed = vec![];
            for rep in 0..reps {
                let seed = suite.rep_seed(&inst.label, n_actual, rep ^ 0xbe15);
                let stable = exec.run(InitialState::Random { seed }, 2 * n_actual + 2);
                let mut g2 = inst.graph.clone();
                let mut rng = StdRng::seed_from_u64(seed);
                if Churn::default().apply_one(&mut g2, &mut rng).is_none() {
                    continue;
                }
                let exec2 = SyncExecutor::new(&g2, &proto);
                let rerun = exec2.run(
                    InitialState::Explicit(stable.final_states.clone()),
                    2 * n_actual + 2,
                );
                ok &= rerun.stabilized() && proto.is_legitimate(&g2, &rerun.final_states);
                post_rounds.push(rerun.rounds());
                post_changed.push(
                    rerun
                        .final_states
                        .iter()
                        .zip(&stable.final_states)
                        .filter(|(a, b)| a != b)
                        .count(),
                );
            }
            all_ok &= ok;
            let b = Summary::of_usize(build.iter().copied());
            let pr = Summary::of_usize(post_rounds.iter().copied());
            let pc = Summary::of_usize(post_changed.iter().copied());
            table.row_strings(vec![
                inst.label.clone(),
                n_actual.to_string(),
                b.mean_pm_std(),
                ghost_run.rounds().to_string(),
                format!("{:.2}", pr.mean),
                format!("{:.2}", pc.mean),
                if ok { "yes".into() } else { "**NO**".into() },
            ]);
        }
    }
    let body = format!(
        "Budget 2n+2 rounds everywhere; {} cells within budget with exact BFS distances\n\
         and min-ID parents. Single link events re-converge in a handful of rounds\n\
         touching few hosts — the multicast-tree readjustment of the introduction.\n\n{}",
        if all_ok { "all" } else { "NOT all" },
        table.to_markdown()
    );
    Report {
        id: "E15",
        title: "Extension: self-stabilizing multicast (BFS) tree maintenance",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e15_clean() {
        let r = super::run(&[16], 3);
        assert!(!r.body.contains("**NO**"), "{}", r.body);
    }
}
