//! E7 — fault tolerance: re-stabilization after transient faults.
//!
//! The abstract promises the algorithms "detect occasional link failures
//! and/or new link creations … and readjust". We stabilize, inject
//! (a) state corruption at `k` random nodes and (b) `k`
//! connectivity-preserving link flips, then measure re-stabilization rounds
//! and how many nodes end up with a different state (containment). The
//! reproduced shape: recovery cost grows with the fault burst size and is
//! far below stabilizing from scratch for small `k`.

use super::Report;
use crate::suite::Suite;
use selfstab_analysis::{Summary, Table};
use selfstab_core::smm::Smm;
use selfstab_core::Smi;
use selfstab_engine::faults::{churn_and_recover, corrupt_and_recover};
use selfstab_engine::protocol::Protocol;

fn sweep<P: Protocol + Clone>(
    make: impl Fn(&crate::suite::Instance) -> P,
    n: usize,
    ks: &[usize],
    reps: u64,
    suite: &Suite,
    churn: bool,
) -> Table {
    let mut table = Table::new(&[
        "topology",
        "fault burst k",
        "recovery rounds mean±std",
        "recovery rounds max",
        "perturbed nodes mean",
        "from-scratch rounds mean",
    ]);
    for inst in suite.instances(n) {
        let proto = make(&inst);
        for &k in ks {
            let (mut rec_rounds, mut perturbed, mut scratch) = (vec![], vec![], vec![]);
            for rep in 0..reps {
                let seed =
                    suite.rep_seed(&inst.label, inst.graph.n(), rep ^ 0xe7 ^ (k as u64) << 8);
                let max_rounds = 4 * inst.graph.n() + 16;
                if churn {
                    let (_, _, initial, recovery) =
                        churn_and_recover(&inst.graph, &proto, k, seed, max_rounds)
                            .expect("initial run must stabilize");
                    rec_rounds.push(recovery.run.rounds());
                    perturbed.push(recovery.perturbed_nodes);
                    scratch.push(initial.rounds());
                } else {
                    let (initial, recovery) =
                        corrupt_and_recover(&inst.graph, &proto, k, seed, max_rounds)
                            .expect("initial run must stabilize");
                    rec_rounds.push(recovery.run.rounds());
                    perturbed.push(recovery.perturbed_nodes);
                    scratch.push(initial.rounds());
                }
            }
            let r = Summary::of_usize(rec_rounds.iter().copied());
            let p = Summary::of_usize(perturbed.iter().copied());
            let s = Summary::of_usize(scratch.iter().copied());
            table.row_strings(vec![
                inst.label.clone(),
                k.to_string(),
                r.mean_pm_std(),
                format!("{}", r.max as usize),
                format!("{:.2}", p.mean),
                format!("{:.2}", s.mean),
            ]);
        }
    }
    table
}

/// Run E7.
pub fn run(n: usize, ks: &[usize], reps: u64) -> Report {
    let suite = Suite::default();
    let smm_corrupt = sweep(
        |inst| Smm::paper(inst.ids.clone()),
        n,
        ks,
        reps,
        &suite,
        false,
    );
    let smm_churn = sweep(
        |inst| Smm::paper(inst.ids.clone()),
        n,
        ks,
        reps,
        &suite,
        true,
    );
    let smi_corrupt = sweep(
        |inst| Smi::new(inst.ids.clone()),
        n,
        ks,
        reps,
        &suite,
        false,
    );
    let smi_churn = sweep(|inst| Smi::new(inst.ids.clone()), n, ks, reps, &suite, true);
    let body = format!(
        "SMM, state corruption at k random nodes:\n\n{}\n\
         SMM, k connectivity-preserving link flips (mobility):\n\n{}\n\
         SMI, state corruption:\n\n{}\n\
         SMI, link flips:\n\n{}",
        smm_corrupt.to_markdown(),
        smm_churn.to_markdown(),
        smi_corrupt.to_markdown(),
        smi_churn.to_markdown()
    );
    Report {
        id: "E7",
        title: "Re-stabilization after faults (link failures/creations, corruption)",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_produces_all_four_tables() {
        let r = super::run(16, &[1, 4], 3);
        assert_eq!(r.body.matches("| topology |").count(), 4);
    }
}
