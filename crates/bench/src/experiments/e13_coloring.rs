//! E13 (extension) — the companion coloring protocol (the paper's ref.\[7\]).
//!
//! Algorithm SC stabilizes within `n + 2` rounds to a proper coloring with
//! at most Δ+1 colors. Sweep mirrors E1/E2; also reports palette size
//! against the Δ+1 envelope and against the chromatic lower bound implied
//! by the clique number on families where we know it.

use super::Report;
use crate::suite::Suite;
use selfstab_analysis::{Summary, Table};
use selfstab_core::coloring::Coloring;
use selfstab_engine::protocol::{InitialState, Protocol};
use selfstab_engine::sync::SyncExecutor;

/// Run E13.
pub fn run(sizes: &[usize], reps: u64) -> Report {
    let suite = Suite::default();
    let mut table = Table::new(&[
        "topology",
        "n",
        "Δ+1",
        "rounds mean±std",
        "rounds max",
        "palette mean",
        "palette max",
        "all proper",
    ]);
    let mut all_ok = true;
    for &n in sizes {
        for inst in suite.instances(n) {
            let n_actual = inst.graph.n();
            let sc = Coloring::new(inst.ids.clone());
            let exec = SyncExecutor::new(&inst.graph, &sc);
            let mut rounds = Vec::new();
            let mut palettes = Vec::new();
            let mut ok = true;
            for rep in 0..reps {
                let seed = suite.rep_seed(&inst.label, n_actual, rep ^ 0xe13);
                let run = exec.run(InitialState::Random { seed }, n_actual + 2);
                ok &= run.stabilized() && sc.is_legitimate(&inst.graph, &run.final_states);
                rounds.push(run.rounds());
                palettes.push(Coloring::palette_size(&run.final_states));
            }
            all_ok &= ok;
            let r = Summary::of_usize(rounds.iter().copied());
            let p = Summary::of_usize(palettes.iter().copied());
            table.row_strings(vec![
                inst.label.clone(),
                n_actual.to_string(),
                (inst.graph.max_degree() + 1).to_string(),
                r.mean_pm_std(),
                format!("{}", r.max as usize),
                format!("{:.2}", p.mean),
                format!("{}", p.max as usize),
                if ok { "yes".into() } else { "**NO**".into() },
            ]);
        }
    }
    let body = format!(
        "{reps} random initial states (including out-of-range corrupted colors) per cell.\n\
         All runs {} within n + 2 rounds to a proper coloring with at most Δ+1 colors.\n\n{}",
        if all_ok {
            "stabilized"
        } else {
            "DID NOT stabilize"
        },
        table.to_markdown()
    );
    Report {
        id: "E13",
        title: "Extension: synchronous self-stabilizing (Δ+1)-coloring (paper's ref [7])",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e13_clean() {
        let r = super::run(&[8, 16], 5);
        assert!(!r.body.contains("**NO**"));
        assert!(r.body.contains("| complete |"));
    }
}
