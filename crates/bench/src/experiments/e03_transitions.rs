//! E3 — Fig. 2 / Fig. 3 / Lemmas 1–7: the node-type transition diagram.
//!
//! Accumulate the empirical type-transition matrix over many traced SMM
//! executions and verify that **every** observed transition is an arrow of
//! Fig. 3 and that `A¹`/`P_A` are empty from round 1 (Lemma 7). The printed
//! matrix *is* the reproduced figure: its non-zero support must be a subset
//! of the diagram's ten arrows.

use super::Report;
use crate::suite::Suite;
use selfstab_core::smm::types::{check_trace, NodeType, TransitionMatrix};
use selfstab_core::smm::Smm;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;

/// Run E3.
pub fn run(sizes: &[usize], reps: u64) -> Report {
    let suite = Suite::default();
    let mut matrix = TransitionMatrix::default();
    let mut runs = 0u64;
    let mut violations = Vec::new();
    for &n in sizes {
        for inst in suite.instances(n) {
            let smm = Smm::paper(inst.ids.clone());
            let exec = SyncExecutor::new(&inst.graph, &smm).with_trace();
            for rep in 0..reps {
                let seed = suite.rep_seed(&inst.label, inst.graph.n(), rep ^ 0xe3);
                let run = exec.run(InitialState::Random { seed }, inst.graph.n() + 1);
                runs += 1;
                match check_trace(&inst.graph, run.trace.as_ref().expect("traced")) {
                    Ok(m) => matrix.merge(&m),
                    Err(v) => violations.push(format!("{}: {v:?}", inst.label)),
                }
            }
        }
    }
    let mut arrows: Vec<String> = Vec::new();
    for f in NodeType::ALL {
        for t in NodeType::ALL {
            if matrix.count(f, t) > 0 {
                arrows.push(format!("{}→{}", f.name(), t.name()));
            }
        }
    }
    let body = format!(
        "{} traced executions, {} node-round transitions, {} violations of the\n\
         Fig. 3 arrow set. Observed support: {}.\n\n{}\n{}",
        runs,
        matrix.total(),
        violations.len(),
        arrows.join(", "),
        matrix.to_markdown(),
        if violations.is_empty() {
            "All transitions lie inside the Fig. 3 diagram; A¹ and P_A were empty from round 1 \
             in every execution (Lemma 7)."
                .to_string()
        } else {
            format!("**VIOLATIONS**: {violations:?}")
        }
    );
    Report {
        id: "E3",
        title: "Node types and the transition diagram (Fig. 2, Fig. 3, Lemmas 1–7)",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e3_no_violations() {
        let r = super::run(&[8, 12], 5);
        assert!(!r.body.contains("VIOLATIONS"));
        assert!(r.body.contains("M→M"));
    }
}
