//! E19 (extension) — active-set scheduling: guard evaluations and wire
//! bytes under the full sweep vs the dirty-node worklist.
//!
//! The synchronous engine's default `Schedule::Active` evaluates a node
//! only when its closed neighborhood changed in the previous round; on the
//! sharded runtime the same invariant suppresses beacons for unmoved
//! boundary nodes (delta beacons). Both are pure pruning — the experiment
//! asserts rounds, moves, and final states are identical to the full sweep
//! on every instance — so the tables isolate the saved work. The paper's
//! convergence structure (Lemmas 9–10: the privileged frontier only
//! shrinks once the first round's asymmetries are resolved) is what makes
//! the worklist collapse: after a few rounds most of the graph is silent,
//! and a silent region costs the active schedule nothing.
//!
//! Topologies chosen for their frontiers: a path (matching resolves
//! outward from the low-id end — long quiet tail), a star (one round of
//! global activity, then only the hub's neighborhood), and a large random
//! geometric graph (the ad hoc model; activity dies out patchwise).

use super::e18_runtime_scaling::geometric_radius;
use super::Report;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_analysis::Table;
use selfstab_core::smm::Smm;
use selfstab_engine::active::Schedule;
use selfstab_engine::obs::MetricsCollector;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Graph, Ids};
use selfstab_runtime::RuntimeExecutor;
use std::time::{Duration, Instant};

fn fmt_time(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

fn fmt_count(x: u64) -> String {
    if x >= 10_000_000 {
        format!("{:.1} M", x as f64 / 1e6)
    } else if x >= 10_000 {
        format!("{:.0} k", x as f64 / 1e3)
    } else {
        format!("{x}")
    }
}

/// One serial run: (rounds, total guard evaluations, wall time).
fn serial_cost(
    g: &Graph,
    smm: &Smm,
    schedule: Schedule,
    max_rounds: usize,
) -> (usize, u64, Duration) {
    let mut m = MetricsCollector::new();
    let start = Instant::now();
    let run = SyncExecutor::new(g, smm)
        .with_schedule(schedule)
        .run_observed(InitialState::Random { seed: 19 }, max_rounds, &mut m);
    let elapsed = start.elapsed();
    assert!(run.stabilized(), "serial run must stabilize");
    let evals: u64 = m.rounds().iter().map(|r| r.evaluated as u64).sum();
    (run.rounds(), evals, elapsed)
}

/// One sharded run: (rounds, frames sent, frames suppressed, bytes).
fn runtime_cost(
    g: &Graph,
    smm: &Smm,
    schedule: Schedule,
    shards: usize,
    max_rounds: usize,
) -> (usize, u64, u64, u64) {
    let mut m = MetricsCollector::new();
    let run = RuntimeExecutor::new(g, smm, shards)
        .with_schedule(schedule)
        .run_observed(InitialState::Random { seed: 19 }, max_rounds, &mut m)
        .expect("sharded run failed");
    assert!(run.stabilized(), "sharded run must stabilize");
    let (mut frames, mut suppressed, mut bytes) = (0u64, 0u64, 0u64);
    for r in m.rounds() {
        let rt = r.runtime.as_ref().expect("runtime counters");
        frames += rt.frames;
        suppressed += rt.frames_suppressed;
        bytes += rt.bytes_on_wire;
    }
    (run.rounds(), frames, suppressed, bytes)
}

/// Run E19 over a path, a star, and a random geometric graph of `geo_n`
/// nodes, comparing both serial evaluation counts and the sharded
/// runtime's wire traffic under each schedule.
pub fn run(geo_n: usize, shards: usize) -> Report {
    let geo_g = generators::random_geometric_connected(
        geo_n,
        geometric_radius(geo_n),
        &mut StdRng::seed_from_u64(0xe19),
    );
    let instances: Vec<(String, Graph)> = vec![
        (format!("path({geo_n})"), generators::path(geo_n)),
        (format!("star({geo_n})"), generators::star(geo_n)),
        (format!("geometric({geo_n})"), geo_g),
    ];

    let mut eval_table = Table::new(&[
        "topology",
        "rounds",
        "evals (full)",
        "evals (active)",
        "saved",
        "time (full)",
        "time (active)",
    ]);
    let mut wire_table = Table::new(&[
        "topology",
        "shards",
        "frames (full)",
        "frames (active)",
        "suppressed",
        "bytes (full)",
        "bytes (active)",
        "bytes saved",
    ]);
    for (name, g) in &instances {
        let smm = Smm::paper(Ids::identity(g.n()));
        let max_rounds = g.n() + 2;

        let (rounds_full, evals_full, t_full) = serial_cost(g, &smm, Schedule::Full, max_rounds);
        let (rounds_active, evals_active, t_active) =
            serial_cost(g, &smm, Schedule::Active, max_rounds);
        assert_eq!(rounds_full, rounds_active, "schedules must agree ({name})");
        assert!(
            evals_active <= evals_full,
            "the worklist can only shrink work ({name})"
        );
        eval_table.row_strings(vec![
            name.clone(),
            format!("{rounds_full}"),
            fmt_count(evals_full),
            fmt_count(evals_active),
            format!(
                "{:.1}%",
                100.0 * (1.0 - evals_active as f64 / evals_full as f64)
            ),
            fmt_time(t_full),
            fmt_time(t_active),
        ]);

        let (rt_rounds, frames_full, sup_full, bytes_full) =
            runtime_cost(g, &smm, Schedule::Full, shards, max_rounds);
        let (rt_rounds_a, frames_active, sup_active, bytes_active) =
            runtime_cost(g, &smm, Schedule::Active, shards, max_rounds);
        assert_eq!(rt_rounds, rounds_full, "runtime rounds must match serial");
        assert_eq!(rt_rounds_a, rounds_full, "runtime rounds must match serial");
        assert_eq!(sup_full, 0, "the full schedule never suppresses");
        assert_eq!(
            frames_active + sup_active,
            frames_full,
            "every boundary beacon is either sent or suppressed ({name})"
        );
        assert!(
            bytes_active < bytes_full,
            "delta beacons must strictly shrink wire traffic ({name})"
        );
        wire_table.row_strings(vec![
            name.clone(),
            format!("{shards}"),
            fmt_count(frames_full),
            fmt_count(frames_active),
            fmt_count(sup_active),
            fmt_count(bytes_full),
            fmt_count(bytes_active),
            format!(
                "{:.1}%",
                100.0 * (1.0 - bytes_active as f64 / bytes_full as f64)
            ),
        ]);
    }

    let body = format!(
        "SMM (min-id policies), one seeded arbitrary initial state per instance; both\n\
         schedules asserted round- and state-identical before costs are compared.\n\n\
         Serial guard evaluations (the tentpole saving — the active worklist is\n\
         `⋃ N[u]` over the previous round's movers, so quiet regions cost nothing):\n\n{}\n\
         Sharded runtime wire traffic ({shards} shards; under the active schedule a\n\
         boundary beacon travels only in rounds where its node moved, with empty\n\
         batches keeping the round handshake static):\n\n{}",
        eval_table.to_markdown(),
        wire_table.to_markdown()
    );
    Report {
        id: "E19",
        title: "Extension: active-set scheduling — evaluations and delta-beacon wire savings",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e19_asserts_equivalence_and_strict_wire_savings() {
        // The run() body asserts schedule equivalence, frame conservation,
        // and strictly fewer wire bytes; surviving it is the test.
        let r = super::run(400, 4);
        assert!(r.body.contains("path(400)"), "{}", r.body);
        assert!(r.body.contains("geometric(400)"), "{}", r.body);
    }
}
