//! E17 — observability: Lemmas 4/7 and 10 machine-checked from **live
//! observer output** instead of recorded traces.
//!
//! E3/E4 validate the paper's structure lemmas by post-processing full
//! state traces. This experiment closes the loop on the observability
//! layer: an SMM run is executed through
//! [`SyncExecutor::run_observed`] with the Fig. 2 census gauges attached,
//! and the lemmas are checked against what the observer *reported*, round
//! by round, with no trace retention at all:
//!
//! * **Lemma 4/7** — from round 1 onwards the classes `A¹` and `P_A` are
//!   empty (every gauge sample after every round must be zero);
//! * **Lemma 10** — while moves keep happening the matching grows by at
//!   least two nodes every two rounds: `|M(t+2)| ≥ |M(t)| + 2` on the
//!   gauge series, for every window starting at `t ≥ 1`.

use super::Report;
use crate::suite::Suite;
use selfstab_analysis::Table;
use selfstab_core::smm::types::census_gauges;
use selfstab_core::smm::Smm;
use selfstab_engine::obs::MetricsCollector;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;

/// Run E17.
pub fn run(sizes: &[usize], reps: u64) -> Report {
    let suite = Suite::default();
    let mut table = Table::new(&[
        "family",
        "n",
        "runs",
        "rounds (max)",
        "lemma 4 samples",
        "lemma 10 windows",
        "violations",
    ]);
    let mut total_violations = 0u64;
    let mut total_samples = 0u64;
    let mut total_windows = 0u64;
    for &n in sizes {
        for inst in suite.instances(n) {
            let smm = Smm::paper(inst.ids.clone());
            let exec = SyncExecutor::new(&inst.graph, &smm);
            let (mut samples, mut windows, mut violations) = (0u64, 0u64, 0u64);
            let mut max_rounds = 0usize;
            for rep in 0..reps {
                let seed = suite.rep_seed(&inst.label, inst.graph.n(), rep ^ 0xe17);
                let mut metrics = MetricsCollector::new().with_gauges(census_gauges(&inst.graph));
                let run = exec.run_observed(
                    InitialState::Random { seed },
                    inst.graph.n() + 1,
                    &mut metrics,
                );
                assert!(run.stabilized(), "Theorem 1 bound exceeded");
                max_rounds = max_rounds.max(run.rounds());
                // Lemma 4/7: A¹ and P_A empty after every round >= 1. The
                // gauge series carry the initial state at index 0, where
                // both classes may legally be populated.
                let a1 = metrics.gauge_series("A1").expect("A1 gauge");
                let pa = metrics.gauge_series("PA").expect("PA gauge");
                for t in 1..a1.len() {
                    samples += 2;
                    if a1[t] != 0 {
                        violations += 1;
                    }
                    if pa[t] != 0 {
                        violations += 1;
                    }
                }
                // Lemma 10 on the live |M| (matched nodes) series.
                let m_nodes = metrics.gauge_series("M").expect("M gauge");
                for t in 1..m_nodes.len().saturating_sub(2) {
                    windows += 1;
                    if m_nodes[t + 2] < m_nodes[t] + 2 {
                        violations += 1;
                    }
                }
                // Internal consistency of the census itself.
                let pairs = metrics.gauge_series("matched_pairs").expect("pairs gauge");
                assert!(m_nodes.iter().zip(&pairs).all(|(&m, &p)| m == 2 * p));
            }
            total_violations += violations;
            total_samples += samples;
            total_windows += windows;
            table.row_strings(vec![
                inst.label.clone(),
                inst.graph.n().to_string(),
                reps.to_string(),
                max_rounds.to_string(),
                samples.to_string(),
                windows.to_string(),
                violations.to_string(),
            ]);
        }
    }
    let body = format!(
        "Lemmas checked from live observer output (census gauges on\n\
         `run_observed`, no trace retention): {total_samples} Lemma 4/7 emptiness samples\n\
         and {total_windows} Lemma 10 growth windows, {total_violations} violations in total.\n\n{}",
        table.to_markdown()
    );
    Report {
        id: "E17",
        title: "Observability: Lemmas 4/7 and 10 from live observer output",
        body,
    }
}

/// The `--metrics` appendix for the harness: one representative observed
/// SMM run rendered as the per-round census table plus the round-latency
/// histogram — the raw material the experiment above aggregates.
pub fn telemetry_section(quick: bool) -> String {
    let n = if quick { 16 } else { 64 };
    let suite = Suite::default();
    let inst = suite
        .instances(n)
        .into_iter()
        .find(|i| i.label == "unit-disk")
        .expect("suite always has a unit-disk instance");
    let smm = Smm::paper(inst.ids.clone());
    let mut metrics = MetricsCollector::new().with_gauges(census_gauges(&inst.graph));
    let run = SyncExecutor::new(&inst.graph, &smm).run_observed(
        InitialState::Random {
            seed: suite.rep_seed(&inst.label, inst.graph.n(), 0xe17),
        },
        inst.graph.n() + 1,
        &mut metrics,
    );
    format!(
        "## Convergence telemetry (--metrics)\n\n\
         SMM on unit-disk n={} (m={}): {} after {} rounds.\n\n{}\n\
         Round-latency histogram (log₂ µs buckets): {}\n",
        inst.graph.n(),
        inst.graph.m(),
        if run.stabilized() {
            "stabilized"
        } else {
            "did not stabilize"
        },
        run.rounds(),
        metrics.render_table(),
        metrics.latency_histogram().render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn e17_no_violations() {
        let r = super::run(&[12], 3);
        assert!(r.body.contains("0 violations in total"), "{}", r.body);
    }

    #[test]
    fn telemetry_section_renders_census_table() {
        let s = super::telemetry_section(true);
        assert!(s.contains("## Convergence telemetry"));
        assert!(
            s.contains("| round | privileged | evaluated | moves | M | A0 |"),
            "{s}"
        );
        assert!(s.contains("Round-latency histogram"));
    }
}
