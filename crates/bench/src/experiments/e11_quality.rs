//! E11 — solution quality of the stabilized structures.
//!
//! Maximality ≠ maximum: a maximal matching is only guaranteed to be a
//! 1/2-approximation of the maximum matching, and MIS sizes depend on the
//! ID order. This experiment situates the protocols' outputs against the
//! greedy oracles and (on small graphs) the exact maximum matching.

use super::Report;
use crate::suite::Suite;
use selfstab_analysis::{Summary, Table};
use selfstab_core::oracle::{
    greedy_maximal_matching_lex, greedy_mis_by_id_desc, maximum_matching_size_bruteforce,
};
use selfstab_core::smm::Smm;
use selfstab_core::Smi;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;

/// Run E11 at size `n` (keep `n ≲ 20` — the maximum matching is brute
/// force).
pub fn run(n: usize, reps: u64) -> Report {
    let suite = Suite::default();
    let mut table = Table::new(&[
        "topology",
        "n",
        "SMM |M| mean",
        "greedy |M|",
        "maximum |M|",
        "SMM/maximum",
        "SMI |S| mean",
        "greedy-desc |S|",
    ]);
    for inst in suite.instances(n) {
        let n_actual = inst.graph.n();
        let smm = Smm::paper(inst.ids.clone());
        let smi = Smi::new(inst.ids.clone());
        let mut smm_sizes = Vec::new();
        let mut smi_sizes = Vec::new();
        for rep in 0..reps {
            let seed = suite.rep_seed(&inst.label, n_actual, rep ^ 0xe11);
            let a = SyncExecutor::new(&inst.graph, &smm)
                .run(InitialState::Random { seed }, n_actual + 1);
            assert!(a.stabilized());
            smm_sizes.push(Smm::matched_edges(&inst.graph, &a.final_states).len());
            let b = SyncExecutor::new(&inst.graph, &smi)
                .run(InitialState::Random { seed }, n_actual + 2);
            assert!(b.stabilized());
            smi_sizes.push(b.final_states.iter().filter(|&&x| x).count());
        }
        let greedy_m = greedy_maximal_matching_lex(&inst.graph).len();
        let max_m = maximum_matching_size_bruteforce(&inst.graph);
        let greedy_s = greedy_mis_by_id_desc(&inst.graph, &inst.ids)
            .iter()
            .filter(|&&x| x)
            .count();
        let sm = Summary::of_usize(smm_sizes.iter().copied());
        let ss = Summary::of_usize(smi_sizes.iter().copied());
        // 1/2-approximation guarantee must hold for every sample.
        assert!(smm_sizes.iter().all(|&s| 2 * s >= max_m));
        table.row_strings(vec![
            inst.label.clone(),
            n_actual.to_string(),
            format!("{:.2}", sm.mean),
            greedy_m.to_string(),
            max_m.to_string(),
            format!("{:.2}", sm.mean / max_m.max(1) as f64),
            format!("{:.2}", ss.mean),
            greedy_s.to_string(),
        ]);
    }
    let body = format!(
        "{reps} random initial states per topology. Every stabilized matching satisfied the\n\
         1/2-approximation guarantee |M| ≥ maximum/2 (a property of *any* maximal matching).\n\n{}",
        table.to_markdown()
    );
    Report {
        id: "E11",
        title: "Solution quality: stabilized |M| and |S| vs greedy and optimal",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_ratios_at_least_half() {
        let r = super::run(14, 3);
        assert!(r.body.contains("1/2-approximation"));
        assert!(r.to_markdown().contains("E11"));
    }
}
