//! E1 — Theorem 1: SMM stabilizes in at most `n + 1` rounds.
//!
//! Sweep: the nine-suite topologies × sizes × random initial states and ID
//! orders; report mean/max rounds against the `n + 1` bound. The *shape*
//! claim being reproduced: the bound holds everywhere, and the worst
//! observed case grows linearly only on adversarial inputs (paths/cycles),
//! staying far below the bound on dense or random topologies.

use super::Report;
use crate::suite::Suite;
use selfstab_analysis::{Summary, Table};
use selfstab_core::smm::Smm;
use selfstab_engine::protocol::{InitialState, Protocol};
use selfstab_engine::sync::SyncExecutor;

/// Run E1. `sizes` and `reps` control the sweep.
pub fn run(sizes: &[usize], reps: u64) -> Report {
    let suite = Suite::default();
    let mut table = Table::new(&[
        "topology",
        "n",
        "m",
        "rounds mean±std",
        "rounds max",
        "bound n+1",
        "within bound",
    ]);
    let mut all_ok = true;
    for &n in sizes {
        for inst in suite.instances(n) {
            let n_actual = inst.graph.n();
            let smm = Smm::paper(inst.ids.clone());
            let exec = SyncExecutor::new(&inst.graph, &smm);
            let mut rounds = Vec::new();
            let mut ok = true;
            for rep in 0..reps {
                let seed = suite.rep_seed(&inst.label, n_actual, rep);
                let run = exec.run(InitialState::Random { seed }, n_actual + 1);
                ok &= run.stabilized() && smm.is_legitimate(&inst.graph, &run.final_states);
                rounds.push(run.rounds());
            }
            all_ok &= ok;
            let s = Summary::of_usize(rounds.iter().copied());
            table.row_strings(vec![
                inst.label.clone(),
                n_actual.to_string(),
                inst.graph.m().to_string(),
                s.mean_pm_std(),
                format!("{}", s.max as usize),
                (n_actual + 1).to_string(),
                if ok {
                    "yes".into()
                } else {
                    "**VIOLATED**".into()
                },
            ]);
        }
    }
    let body = format!(
        "Every cell ran {reps} random initial states (random ID orders).\n\
         All runs {} within the Theorem 1 bound and ended in a maximal matching\n\
         with all unmatched nodes aloof (Lemma 8).\n\n{}",
        if all_ok {
            "stabilized"
        } else {
            "DID NOT all stabilize"
        },
        table.to_markdown()
    );
    Report {
        id: "E1",
        title: "SMM stabilizes within n + 1 rounds (Theorem 1)",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_small_sweep_is_clean() {
        let r = super::run(&[8, 16], 5);
        assert!(!r.body.contains("VIOLATED"));
        assert!(r.body.contains("| path | "));
        assert!(r.to_markdown().starts_with("## E1"));
    }
}
