//! E5 — the Section 3 remark: R2's **minimum**-ID selection is necessary.
//!
//! "Consider a four cycle, with all pointers initially null, which
//! repeatedly select their clockwise neighbor using rule R2, and then
//! execute rule R3" — with an arbitrary selection SMM need not stabilize.
//! We run the exact counterexample (cycle, clockwise policy, all-null
//! start) with cycle detection, prove the oscillation, and contrast every
//! selection policy on the same instances, including the stabilization
//! *probability* over random initial states.

use super::Report;
use selfstab_analysis::Table;
use selfstab_core::smm::{SelectPolicy, Smm};
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::{Outcome, SyncExecutor};
use selfstab_graph::{generators, Ids};

fn policy_name(p: SelectPolicy) -> &'static str {
    match p {
        SelectPolicy::MinId => "min-ID (paper)",
        SelectPolicy::MaxId => "max-ID",
        SelectPolicy::FirstIndex => "first-index",
        SelectPolicy::Clockwise => "clockwise",
        SelectPolicy::Hashed => "hashed",
    }
}

/// Run E5.
pub fn run(random_reps: u64) -> Report {
    let policies = [
        SelectPolicy::MinId,
        SelectPolicy::MaxId,
        SelectPolicy::FirstIndex,
        SelectPolicy::Clockwise,
        SelectPolicy::Hashed,
    ];
    let mut table = Table::new(&[
        "graph",
        "R2 policy",
        "all-null start",
        "stabilized / random starts",
    ]);
    for n in [4usize, 8, 16] {
        let g = generators::cycle(n);
        for policy in policies {
            // The paper's R1 choice is free; keep it min-ID so only R2's
            // policy varies.
            let smm = Smm::with_policies(Ids::identity(n), SelectPolicy::MinId, policy);
            let exec = SyncExecutor::new(&g, &smm).with_cycle_detection();
            let run = exec.run(InitialState::Default, 4 * n + 16);
            let outcome = match run.outcome {
                Outcome::Stabilized => format!("stabilizes in {} rounds", run.rounds()),
                Outcome::Cycle { period, .. } => format!("**oscillates** (period {period})"),
                Outcome::RoundLimit => "round limit".into(),
            };
            let mut ok = 0u64;
            for rep in 0..random_reps {
                let r = exec.run(InitialState::Random { seed: rep ^ 0xe5 }, 4 * n + 16);
                if r.stabilized() {
                    ok += 1;
                }
            }
            table.row_strings(vec![
                format!("C{n}"),
                policy_name(policy).into(),
                outcome,
                format!("{ok}/{random_reps}"),
            ]);
        }
    }
    let body = format!(
        "All-null start on even cycles: the clockwise policy reproduces the paper's\n\
         counterexample exactly (propose-all, back-off-all, period 2); the min-ID policy\n\
         always stabilizes, as Theorem 1 requires. 'Arbitrary but symmetric' policies\n\
         oscillate from symmetric starts and may stabilize from asymmetric ones.\n\n{}",
        table.to_markdown()
    );
    Report {
        id: "E5",
        title: "The C₄ counterexample: min-ID in R2 is load-bearing (Section 3 remark)",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_shows_oscillation_and_stabilization() {
        let r = super::run(5);
        assert!(r.body.contains("**oscillates** (period 2)"));
        // min-ID table rows must never oscillate.
        for line in r
            .body
            .lines()
            .filter(|l| l.starts_with("| C") && l.contains("min-ID"))
        {
            assert!(line.contains("stabilizes"), "{line}");
            assert!(line.contains("5/5"), "{line}");
        }
    }
}
