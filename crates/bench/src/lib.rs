//! Experiment implementations for the `selfstab` reproduction.
//!
//! Every claim of the paper with measurable content maps to one experiment
//! module (the per-experiment index lives in DESIGN.md; results in
//! EXPERIMENTS.md). The `harness` binary runs them and prints the Markdown
//! tables; the Criterion benches under `benches/` time the same code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod observatory;
pub mod suite;

pub use observatory::{BenchArtifact, BenchRecord, Tier};
pub use suite::{Instance, Suite};
